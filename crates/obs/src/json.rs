//! A minimal, dependency-free JSON reader and writer.
//!
//! The offline build has no serde, so every JSON surface in the workspace —
//! the cache's warm-start snapshots (`qsp_core::ShardedCache`), the serving
//! layer's stats dumps (`qsp-serve`), the observability snapshots
//! ([`crate::ObsSnapshot`]) and the benchmark reports (`BENCH_batch.json`,
//! `BENCH_serve.json`) — shares this one hand-rolled implementation instead
//! of growing parallel parsers.
//!
//! The dialect is deliberately small but self-consistent: objects (field
//! order preserved), arrays, strings (with the standard escape sequences,
//! including `\uXXXX` and surrogate pairs), unsigned 64-bit integers, finite
//! `f64` floats, booleans and `null`. Unsigned integers are kept exact —
//! [`Value::Num`] never round-trips through a float — because the snapshot
//! format stores rotation angles as `f64` *bit patterns* and relies on
//! `u64`-lossless round-trips.
//!
//! # Example
//!
//! ```
//! use qsp_obs::json::{parse, Value};
//!
//! let value = Value::Object(vec![
//!     ("angle_bits".to_string(), Value::Num(0.25f64.to_bits())),
//!     ("label".to_string(), Value::Str("p95 \"latency\"".to_string())),
//! ]);
//! let text = value.to_json();
//! assert_eq!(parse(&text).unwrap(), value);
//! ```

use std::fmt::Write as _;

/// What went wrong while parsing a JSON document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum JsonErrorKind {
    /// A structural token other than the expected one (the payload names
    /// what was expected, e.g. `":"` or `"`,` or `]`"`).
    Expected(&'static str),
    /// A byte that cannot start a JSON value.
    UnexpectedByte,
    /// Input continues after the document's root value.
    TrailingData,
    /// A string literal with no closing quote.
    UnterminatedString,
    /// An invalid `\` escape sequence (including truncated `\uXXXX`).
    InvalidEscape,
    /// A `\uXXXX` surrogate half without a valid partner.
    UnpairedSurrogate,
    /// Bytes that are not valid UTF-8 inside a string literal.
    InvalidUtf8,
    /// A malformed number literal.
    InvalidNumber,
    /// A number literal with no finite `f64` (or exact `u64`) value.
    NumberOutOfRange,
    /// A bare word other than `true`, `false` or `null`.
    InvalidLiteral,
}

impl std::fmt::Display for JsonErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonErrorKind::Expected(what) => write!(f, "expected {what}"),
            JsonErrorKind::UnexpectedByte => write!(f, "unexpected byte"),
            JsonErrorKind::TrailingData => write!(f, "trailing data after the root value"),
            JsonErrorKind::UnterminatedString => write!(f, "unterminated string"),
            JsonErrorKind::InvalidEscape => write!(f, "invalid escape sequence"),
            JsonErrorKind::UnpairedSurrogate => write!(f, "unpaired surrogate"),
            JsonErrorKind::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            JsonErrorKind::InvalidNumber => write!(f, "invalid number"),
            JsonErrorKind::NumberOutOfRange => write!(f, "number out of range"),
            JsonErrorKind::InvalidLiteral => write!(f, "invalid literal"),
        }
    }
}

/// A typed JSON syntax error: what went wrong and at which input byte.
///
/// # Example
///
/// ```
/// use qsp_obs::json::{parse, JsonErrorKind};
///
/// let error = parse("[1, 2").unwrap_err();
/// assert_eq!(error.kind, JsonErrorKind::Expected("`,` or `]`"));
/// assert_eq!(error.byte_offset, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub kind: JsonErrorKind,
    /// Byte offset into the input at which the error was detected.
    pub byte_offset: usize,
}

impl JsonError {
    fn new(kind: JsonErrorKind, byte_offset: usize) -> Self {
        JsonError { kind, byte_offset }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.kind, self.byte_offset)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The `null` literal.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer. Kept distinct from [`Value::Float`] so `u64` bit
    /// patterns (the snapshot angle encoding) round-trip exactly.
    Num(u64),
    /// A finite floating-point number (anything with a `.`, an exponent or a
    /// sign, or an integer too large for `u64`).
    Float(f64),
    /// A string literal.
    Str(String),
    /// Array elements in document order.
    Array(Vec<Value>),
    /// Key-value pairs in document order (duplicate keys are preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `f64` (integers are converted), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up the first field named `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Serializes the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes the value as indented JSON (two spaces per level, a
    /// trailing newline) for human-facing reports.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Appends the compact serialization to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => write_float(out, *f),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes a float using Rust's shortest round-trip representation (always
/// containing a `.` or an exponent, so the reader parses it back as a
/// [`Value::Float`]). Non-finite values have no JSON spelling and are written
/// as `null`.
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, requiring the whole input to be consumed.
///
/// # Errors
///
/// Returns a typed [`JsonError`] describing the first syntax error and the
/// byte offset it was detected at.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::new(JsonErrorKind::TrailingData, pos));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8, name: &'static str) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::new(JsonErrorKind::Expected(name), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') | Some(b'f') | Some(b'n') => parse_literal(bytes, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(JsonError::new(JsonErrorKind::UnexpectedByte, *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'{', "`{`")?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':', "`:`")?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(JsonError::new(JsonErrorKind::Expected("`,` or `}`"), *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'[', "`[`")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(JsonError::new(JsonErrorKind::Expected("`,` or `]`"), *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::new(JsonErrorKind::Expected("string"), *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::new(JsonErrorKind::UnterminatedString, *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                let escape_at = *pos;
                *pos += 1;
                let escape = bytes
                    .get(*pos)
                    .ok_or(JsonError::new(JsonErrorKind::InvalidEscape, escape_at))?;
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let unit = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: a `\uXXXX` low surrogate must
                            // follow.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(JsonError::new(
                                    JsonErrorKind::UnpairedSurrogate,
                                    escape_at,
                                ));
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(JsonError::new(
                                    JsonErrorKind::UnpairedSurrogate,
                                    escape_at,
                                ));
                            }
                            let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(code).ok_or(JsonError::new(
                                JsonErrorKind::UnpairedSurrogate,
                                escape_at,
                            ))?
                        } else {
                            char::from_u32(unit).ok_or(JsonError::new(
                                JsonErrorKind::UnpairedSurrogate,
                                escape_at,
                            ))?
                        };
                        out.push(c);
                    }
                    _ => return Err(JsonError::new(JsonErrorKind::InvalidEscape, escape_at)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences intact).
                // Unreachable from `parse(&str)` input (already valid
                // UTF-8), but kept sound for byte-level callers: the error
                // points at the exact offending byte, not the chunk start.
                let start = *pos;
                let mut end = start + 1;
                while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..end]).map_err(|e| {
                    JsonError::new(JsonErrorKind::InvalidUtf8, start + e.valid_up_to())
                })?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let at = *pos;
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= bytes.len())
        .ok_or(JsonError::new(JsonErrorKind::InvalidEscape, at))?;
    let hex = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| JsonError::new(JsonErrorKind::InvalidEscape, at))?;
    let unit = u32::from_str_radix(hex, 16)
        .map_err(|_| JsonError::new(JsonErrorKind::InvalidEscape, at))?;
    *pos = end;
    Ok(unit)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("number bytes are ascii");
    if !text.contains(['.', 'e', 'E']) && !text.starts_with('-') {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Num(n));
        }
    }
    match text.parse::<f64>() {
        Ok(f) if f.is_finite() => Ok(Value::Float(f)),
        Ok(_) => Err(JsonError::new(JsonErrorKind::NumberOutOfRange, start)),
        Err(_) => Err(JsonError::new(JsonErrorKind::InvalidNumber, start)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(b"true") {
        *pos += 4;
        Ok(Value::Bool(true))
    } else if bytes[*pos..].starts_with(b"false") {
        *pos += 5;
        Ok(Value::Bool(false))
    } else if bytes[*pos..].starts_with(b"null") {
        *pos += 4;
        Ok(Value::Null)
    } else {
        Err(JsonError::new(JsonErrorKind::InvalidLiteral, *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parses_the_basic_shapes() {
        let value = parse(r#"{"a":[1,true,null,"x"],"b":{"c":false}}"#).unwrap();
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_bool(),
            Some(false)
        );
        assert_eq!(parse("  42 ").unwrap(), Value::Num(42));
        assert_eq!(parse("-1.5").unwrap(), Value::Float(-1.5));
        assert_eq!(parse("2e3").unwrap(), Value::Float(2000.0));
    }

    #[test]
    fn u64_integers_stay_exact() {
        // The snapshot invariant: f64 bit patterns are stored as u64 and must
        // survive a round-trip without going through a float.
        for f in [0.25f64, -1.234567891011e-3, f64::MAX, 1.0 / 3.0] {
            let bits = f.to_bits();
            let text = Value::Num(bits).to_json();
            assert_eq!(parse(&text).unwrap().as_u64(), Some(bits));
        }
        assert_eq!(parse(&u64::MAX.to_string()).unwrap(), Value::Num(u64::MAX));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\" and \\ backslash",
            "control \n\r\t\u{8}\u{c} chars",
            "unicode: åβ𝄞 and \u{1} low",
            "slash / stays",
        ] {
            let text = Value::Str(s.to_string()).to_json();
            assert_eq!(parse(&text).unwrap().as_str(), Some(s));
        }
        // Explicit escape spellings parse to the same characters.
        assert_eq!(
            parse(r#""\u0041\u00e5\ud834\udd1e""#).unwrap().as_str(),
            Some("Aå𝄞")
        );
        assert_eq!(parse(r#""\/""#).unwrap().as_str(), Some("/"));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..500 {
            let f = f64::from_bits(rng.gen_range(0..u64::MAX));
            if !f.is_finite() {
                continue;
            }
            let text = Value::Float(f).to_json();
            let Value::Float(back) = parse(&text).unwrap() else {
                panic!("float `{text}` did not parse back as a float");
            };
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
        // Non-finite floats have no JSON spelling and degrade to null.
        assert_eq!(
            parse(&Value::Float(f64::NAN).to_json()).unwrap(),
            Value::Null
        );
        assert_eq!(
            parse(&Value::Float(f64::INFINITY).to_json()).unwrap(),
            Value::Null
        );
    }

    /// Builds a random value tree: nested objects/arrays with string, bit
    /// pattern, float, bool and null leaves.
    fn random_value(rng: &mut StdRng, depth: usize) -> Value {
        let leaf_only = depth == 0;
        match rng.gen_range(0..if leaf_only { 5 } else { 7usize }) {
            0 => Value::Null,
            1 => Value::Bool(rng.gen_bool(0.5)),
            2 => Value::Num(rng.gen_range(0..u64::MAX)),
            3 => {
                let mut f = f64::from_bits(rng.gen_range(0..u64::MAX));
                if !f.is_finite() {
                    f = 0.5;
                }
                Value::Float(f)
            }
            4 => {
                let len = rng.gen_range(0..12usize);
                Value::Str(
                    (0..len)
                        .map(|_| char::from_u32(rng.gen_range(1u32..0x500)).unwrap_or('\\'))
                        .collect(),
                )
            }
            5 => Value::Array(
                (0..rng.gen_range(0..5usize))
                    .map(|_| random_value(rng, depth - 1))
                    .collect(),
            ),
            _ => Value::Object(
                (0..rng.gen_range(0..5usize))
                    .map(|i| (format!("k{i}\"\\\n"), random_value(rng, depth - 1)))
                    .collect(),
            ),
        }
    }

    #[test]
    fn randomized_round_trip_compact_and_pretty() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let value = random_value(&mut rng, 3);
            assert_eq!(parse(&value.to_json()).unwrap(), value);
            assert_eq!(parse(&value.to_json_pretty()).unwrap(), value);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "not json",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "{1:2}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12",
            "\"\\ud834\"",
            "\"\\ud834\\u0041\"",
            "truth",
            "nul",
            "1e999",
            "--5",
            "1.2.3",
            "42 trailing",
            "[1,2,]",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn errors_are_typed_with_byte_offsets() {
        let cases = [
            ("", JsonErrorKind::UnexpectedByte, 0),
            ("[1 2]", JsonErrorKind::Expected("`,` or `]`"), 3),
            ("{\"a\" 1}", JsonErrorKind::Expected("`:`"), 5),
            ("{1:2}", JsonErrorKind::Expected("string"), 1),
            ("\"unterminated", JsonErrorKind::UnterminatedString, 13),
            ("\"bad \\q escape\"", JsonErrorKind::InvalidEscape, 5),
            ("\"\\ud834\"", JsonErrorKind::UnpairedSurrogate, 1),
            ("1e999", JsonErrorKind::NumberOutOfRange, 0),
            ("1.2.3", JsonErrorKind::InvalidNumber, 0),
            ("nul", JsonErrorKind::InvalidLiteral, 0),
            ("42 trailing", JsonErrorKind::TrailingData, 3),
        ];
        for (input, kind, offset) in cases {
            let error = parse(input).unwrap_err();
            assert_eq!(error.kind, kind, "{input}");
            assert_eq!(error.byte_offset, offset, "{input}");
            // The Display form names the kind and the offset.
            assert!(error.to_string().contains(&format!("byte {offset}")));
        }
        // JsonError is a std error, so it threads into io/synthesis errors.
        let boxed: Box<dyn std::error::Error> = Box::new(parse("[").unwrap_err());
        assert!(boxed.to_string().contains("byte"));
    }

    #[test]
    fn pretty_output_is_indented() {
        let value = Value::Object(vec![(
            "xs".to_string(),
            Value::Array(vec![Value::Num(1), Value::Num(2)]),
        )]);
        let pretty = value.to_json_pretty();
        assert!(pretty.contains("\n  \"xs\": [\n    1,\n    2\n  ]\n"));
        assert!(pretty.ends_with("}\n"));
    }
}
