//! Per-request tracing: trace ids, stage spans and the lock-free trace ring.
//!
//! Every synthesis request is assigned a [`TraceId`] at admission. As the
//! request moves through the pipeline, each stage
//! (queue wait → validate → key → cache probe → solve → reconstruct, the
//! [`SpanKind`] taxonomy) is timed into a [`SpanTiming`], and the assembled
//! [`RequestTrace`] rides back to the caller on its
//! `SynthesisReport` — fine-grained per-stage latency for *every* request,
//! not just sampled ones.
//!
//! Independently, a head-sampled subset of traces is copied into the
//! process-wide [`TraceRing`]: a fixed-capacity, lock-free ring of seqlock
//! slots that overwrites oldest-first and can be drained at any time
//! ([`TraceRing::read`]) without stopping writers. The sampling decision is
//! made once per request from its id ([`Tracer::should_record`]), so a
//! request is either fully in the ring or not at all (head sampling).
//!
//! Cost discipline: with tracing disabled, [`Tracer::should_record`] is a
//! single relaxed atomic load; with it enabled, each recorded span is one
//! `fetch_add` ticket plus five relaxed stores and two release/acquire
//! fences on its slot. Writers never block — a writer that loses its slot
//! to a full-lap race drops the span and counts it instead.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crate::json::Value;

/// A process-unique request trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

impl TraceId {
    /// The next process-unique id (a relaxed counter starting at 1).
    pub fn next() -> TraceId {
        TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Rebuilds an id from its raw value (tests, deserialization).
    pub fn from_raw(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// The raw id value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// The pipeline stage a span measures.
///
/// The six kinds partition a request's end-to-end latency on the serve
/// path; on the direct batch path only `Key`/`CacheProbe`/`Solve`/
/// `Reconstruct` occur. For a request served by dedup attach or a cache
/// hit, `Solve` measures the time spent *waiting* on the owning solve
/// (zero for a pure cache hit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// From submission until a worker drained the request.
    QueueWait,
    /// Deadline/admission checks and option resolution.
    Validate,
    /// Canonical keying through the invariant pipeline.
    Key,
    /// Cache and in-flight-table probe.
    CacheProbe,
    /// The solve itself, or the wait for the owning solve.
    Solve,
    /// Mapping the class representative's circuit back through the witness
    /// transform.
    Reconstruct,
}

impl SpanKind {
    /// All kinds, in pipeline order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::QueueWait,
        SpanKind::Validate,
        SpanKind::Key,
        SpanKind::CacheProbe,
        SpanKind::Solve,
        SpanKind::Reconstruct,
    ];

    /// The stable snake_case name used in JSON dumps.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Validate => "validate",
            SpanKind::Key => "key",
            SpanKind::CacheProbe => "cache_probe",
            SpanKind::Solve => "solve",
            SpanKind::Reconstruct => "reconstruct",
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            SpanKind::QueueWait => 0,
            SpanKind::Validate => 1,
            SpanKind::Key => 2,
            SpanKind::CacheProbe => 3,
            SpanKind::Solve => 4,
            SpanKind::Reconstruct => 5,
        }
    }

    fn from_u64(raw: u64) -> Option<SpanKind> {
        SpanKind::ALL.get(raw as usize).copied()
    }
}

/// One timed stage of one request. `start` is relative to the request's own
/// submission instant, so a trace's spans reconstruct its timeline without
/// any global clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanTiming {
    /// The stage measured.
    pub kind: SpanKind,
    /// Offset from the request's submission to the stage start.
    pub start: Duration,
    /// How long the stage took.
    pub duration: Duration,
}

impl SpanTiming {
    /// The span as JSON (`kind`, `start_ns`, `duration_ns`).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("kind".to_string(), Value::Str(self.kind.name().to_string())),
            (
                "start_ns".to_string(),
                Value::Num(self.start.as_nanos() as u64),
            ),
            (
                "duration_ns".to_string(),
                Value::Num(self.duration.as_nanos() as u64),
            ),
        ])
    }
}

/// A request's assembled span tree: its id plus one span per traversed
/// stage, in pipeline order. Carried on the request's `SynthesisReport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// The request's trace id.
    pub id: TraceId,
    /// The per-stage spans, in pipeline order.
    pub spans: Vec<SpanTiming>,
}

impl RequestTrace {
    /// An empty trace for `id`.
    pub fn new(id: TraceId) -> Self {
        RequestTrace {
            id,
            spans: Vec::new(),
        }
    }

    /// Appends a span.
    pub fn push(&mut self, kind: SpanKind, start: Duration, duration: Duration) {
        self.spans.push(SpanTiming {
            kind,
            start,
            duration,
        });
    }

    /// The duration of the first span of `kind`, if present.
    pub fn duration_of(&self, kind: SpanKind) -> Option<Duration> {
        self.spans
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.duration)
    }

    /// The sum of all span durations — the portion of the end-to-end
    /// latency the trace accounts for.
    pub fn span_total(&self) -> Duration {
        self.spans.iter().map(|s| s.duration).sum()
    }

    /// The trace as JSON (`trace_id`, `spans`).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("trace_id".to_string(), Value::Num(self.id.as_u64())),
            (
                "spans".to_string(),
                Value::Array(self.spans.iter().map(SpanTiming::to_json).collect()),
            ),
        ])
    }
}

/// One span drained from the ring, with its global write order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedSpan {
    /// The global write ticket: monotone in record order across threads.
    pub order: u64,
    /// The owning request's trace id.
    pub trace: TraceId,
    /// The span payload.
    pub span: SpanTiming,
}

struct Slot {
    /// Seqlock sequence: even = stable, odd = a write is in progress.
    seq: AtomicU64,
    order: AtomicU64,
    trace_id: AtomicU64,
    kind: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            order: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            kind: AtomicU64::new(u64::MAX),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot").finish_non_exhaustive()
    }
}

/// The fixed-capacity, lock-free span ring. See the [module docs](self).
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Slot]>,
    mask: usize,
    head: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding at least `capacity` spans (rounded up to a power of
    /// two; minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        TraceRing {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            mask: capacity - 1,
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The (rounded) span capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans successfully written (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans dropped because their slot was mid-write (a full-lap race).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Writes one span, overwriting the oldest when the ring is full.
    /// Never blocks: a writer that finds its slot locked by a racing
    /// full-lap writer drops the span instead.
    pub fn record(&self, trace: TraceId, span: SpanTiming) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & self.mask];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1
            || slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.order.store(ticket, Ordering::Relaxed);
        slot.trace_id.store(trace.as_u64(), Ordering::Relaxed);
        slot.kind.store(span.kind.as_u64(), Ordering::Relaxed);
        slot.start_ns
            .store(span.start.as_nanos() as u64, Ordering::Relaxed);
        slot.dur_ns
            .store(span.duration.as_nanos() as u64, Ordering::Relaxed);
        slot.seq.store(seq + 2, Ordering::Release);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Drains a consistent copy of the ring, oldest span first. Slots whose
    /// writer is mid-flight are skipped rather than returned torn (each
    /// slot's seqlock is checked before and after the payload read).
    pub fn read(&self) -> Vec<RecordedSpan> {
        let mut spans = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before == 0 || seq_before & 1 == 1 {
                continue; // never written, or a write is in progress
            }
            let order = slot.order.load(Ordering::Relaxed);
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq_before {
                continue; // a writer raced the read; the payload may be torn
            }
            let Some(kind) = SpanKind::from_u64(kind) else {
                continue;
            };
            spans.push(RecordedSpan {
                order,
                trace: TraceId::from_raw(trace_id),
                span: SpanTiming {
                    kind,
                    start: Duration::from_nanos(start_ns),
                    duration: Duration::from_nanos(dur_ns),
                },
            });
        }
        spans.sort_by_key(|s| s.order);
        spans
    }
}

/// The head-sampling trace collector: an enable switch, a sampling modulus
/// and the shared [`TraceRing`].
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    sample_every: u64,
    ring: TraceRing,
}

impl Tracer {
    /// A tracer recording every `sample_every`-th trace id into a ring of
    /// `ring_capacity` spans. `sample_every == 0` disables sampling
    /// entirely (nothing ever reaches the ring).
    pub fn new(enabled: bool, sample_every: u64, ring_capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(enabled),
            sample_every,
            ring: TraceRing::new(ring_capacity),
        }
    }

    /// Whether ring recording is on (one relaxed load — the whole cost of
    /// tracing when disabled).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips ring recording at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The sampling modulus.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// The head-sampling decision for a request: made once, from the id,
    /// so a trace is either fully recorded or not at all.
    pub fn should_record(&self, id: TraceId) -> bool {
        self.enabled() && self.sample_every != 0 && id.as_u64().is_multiple_of(self.sample_every)
    }

    /// Records every span of `trace` into the ring, if the trace is
    /// sampled. Returns whether it was.
    pub fn record_trace(&self, trace: &RequestTrace) -> bool {
        if !self.should_record(trace.id) {
            return false;
        }
        for span in &trace.spans {
            self.ring.record(trace.id, *span);
        }
        true
    }

    /// The underlying ring (for draining and stats).
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, start_ns: u64, dur_ns: u64) -> SpanTiming {
        SpanTiming {
            kind,
            start: Duration::from_nanos(start_ns),
            duration: Duration::from_nanos(dur_ns),
        }
    }

    #[test]
    fn ring_round_trips_spans_in_order() {
        let ring = TraceRing::new(8);
        for i in 0..5u64 {
            ring.record(TraceId::from_raw(i + 1), span(SpanKind::Solve, i, i * 10));
        }
        let spans = ring.read();
        assert_eq!(spans.len(), 5);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 0);
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(s.order, i as u64);
            assert_eq!(s.trace.as_u64(), i as u64 + 1);
            assert_eq!(s.span.duration, Duration::from_nanos(i as u64 * 10));
        }
    }

    #[test]
    fn capacity_eviction_drops_oldest_first() {
        let ring = TraceRing::new(4);
        for i in 0..11u64 {
            ring.record(TraceId::from_raw(i), span(SpanKind::Key, 0, i));
        }
        let spans = ring.read();
        assert_eq!(spans.len(), 4);
        // Exactly the newest `capacity` writes survive, oldest first.
        let orders: Vec<u64> = spans.iter().map(|s| s.order).collect();
        assert_eq!(orders, [7, 8, 9, 10]);
    }

    #[test]
    fn head_sampling_is_per_trace_and_cheap_when_disabled() {
        let tracer = Tracer::new(true, 4, 64);
        let mut recorded_ids = Vec::new();
        for id in 1..=20u64 {
            let mut trace = RequestTrace::new(TraceId::from_raw(id));
            trace.push(SpanKind::Key, Duration::ZERO, Duration::from_nanos(id));
            trace.push(SpanKind::Solve, Duration::ZERO, Duration::from_nanos(id));
            if tracer.record_trace(&trace) {
                recorded_ids.push(id);
            }
        }
        assert_eq!(recorded_ids, [4, 8, 12, 16, 20]);
        // Sampled traces land whole (head sampling): both spans per id.
        let spans = tracer.ring().read();
        assert_eq!(spans.len(), 10);
        for id in recorded_ids {
            assert_eq!(spans.iter().filter(|s| s.trace.as_u64() == id).count(), 2);
        }
        // Disabled: nothing records, and the check is one relaxed load.
        tracer.set_enabled(false);
        assert!(!tracer.should_record(TraceId::from_raw(4)));
        let mut trace = RequestTrace::new(TraceId::from_raw(8));
        trace.push(SpanKind::Key, Duration::ZERO, Duration::ZERO);
        assert!(!tracer.record_trace(&trace));
        assert_eq!(tracer.ring().recorded(), 10);
    }

    #[test]
    fn trace_json_names_the_taxonomy() {
        let mut trace = RequestTrace::new(TraceId::from_raw(9));
        for (i, kind) in SpanKind::ALL.into_iter().enumerate() {
            trace.push(
                kind,
                Duration::from_nanos(i as u64 * 100),
                Duration::from_nanos(100),
            );
        }
        assert_eq!(trace.span_total(), Duration::from_nanos(600));
        assert_eq!(
            trace.duration_of(SpanKind::CacheProbe),
            Some(Duration::from_nanos(100))
        );
        let parsed = crate::json::parse(&trace.to_json().to_json()).unwrap();
        assert_eq!(parsed.get("trace_id").unwrap().as_u64(), Some(9));
        let spans = parsed.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 6);
        assert_eq!(spans[0].get("kind").unwrap().as_str(), Some("queue_wait"));
        assert_eq!(spans[5].get("kind").unwrap().as_str(), Some("reconstruct"));
    }
}
