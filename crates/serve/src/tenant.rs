//! Multi-tenant admission control: tenant configuration, the name → id
//! directory, and the per-tenant token-bucket admitter.
//!
//! A [`TenantPolicy`] declares the tenants a service knows about; each
//! configured tenant gets a [`TenantId`] (its index in the policy) plus one
//! built-in *default* tenant that absorbs requests with no tenant — or an
//! unknown one. Admission is a classic token bucket per tenant: the bucket
//! refills continuously at [`TenantConfig::refill_per_sec`] up to
//! [`TenantConfig::burst`], and every accepted submission spends one token.
//! A submission that finds an empty bucket is rejected with
//! [`RejectReason::Throttled`](crate::RejectReason::Throttled) *before* it
//! touches the submission queue, so a flooding tenant burns its own budget,
//! never queue capacity.
//!
//! Fairness among admitted requests is the queue's job: the submission
//! queue keeps one sub-queue per tenant and drains them deficit-round-robin
//! weighted by [`TenantConfig::weight`] (see
//! [`queue`](crate::queue::SubmissionQueue)).

use std::sync::Mutex;
use std::time::Instant;

use qsp_core::TenantId;
use qsp_obs::Gauge;

/// Admission and scheduling knobs of one tenant.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct TenantConfig {
    /// Tenant name — the wire handshake's tenant string resolves against it,
    /// and every per-tenant metric carries it as the `tenant` label.
    pub name: String,
    /// Deficit-round-robin weight of the tenant's sub-queue: per scheduler
    /// pass, a tenant with weight `w` gets up to `w` requests drained for
    /// every 1 a weight-1 tenant gets. Clamped to at least 1.
    pub weight: u32,
    /// Token-bucket refill rate in requests per second.
    /// `f64::INFINITY` (the default) disables throttling for this tenant.
    pub refill_per_sec: f64,
    /// Token-bucket capacity: the largest burst admitted from a full bucket.
    pub burst: f64,
}

impl TenantConfig {
    /// An unthrottled tenant with weight 1.
    pub fn new(name: impl Into<String>) -> Self {
        TenantConfig {
            name: name.into(),
            weight: 1,
            refill_per_sec: f64::INFINITY,
            burst: f64::INFINITY,
        }
    }

    /// Sets the DRR weight (clamped to at least 1 when consumed).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Enables token-bucket throttling: `refill_per_sec` sustained requests
    /// per second with bursts up to `burst`.
    pub fn with_rate(mut self, refill_per_sec: f64, burst: f64) -> Self {
        self.refill_per_sec = refill_per_sec;
        self.burst = burst;
        self
    }

    /// Whether this tenant is rate-limited at all.
    pub fn is_throttled(&self) -> bool {
        self.refill_per_sec.is_finite()
    }
}

/// The set of tenants a service admits, plus the default-tenant knobs.
///
/// The policy is positional: the [`TenantId`] of a configured tenant is its
/// index in [`TenantPolicy::tenants`]. Requests without a tenant id (or with
/// an out-of-range one) are billed to the built-in default tenant, which is
/// unthrottled and has [`TenantPolicy::default_weight`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct TenantPolicy {
    /// The configured tenants, in id order.
    pub tenants: Vec<TenantConfig>,
    /// DRR weight of the built-in default tenant.
    pub default_weight: u32,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            tenants: Vec::new(),
            default_weight: 1,
        }
    }
}

/// Metric label (and stats name) of the built-in default tenant.
pub const DEFAULT_TENANT_NAME: &str = "default";

impl TenantPolicy {
    /// An empty policy: every request lands on the default tenant,
    /// unthrottled — the exact pre-tenancy service behaviour.
    pub fn new() -> Self {
        TenantPolicy::default()
    }

    /// Appends a tenant; its [`TenantId`] is its position.
    pub fn with_tenant(mut self, tenant: TenantConfig) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Sets the default tenant's DRR weight.
    pub fn with_default_weight(mut self, weight: u32) -> Self {
        self.default_weight = weight;
        self
    }

    /// Resolves a tenant name to its id. Unknown names get `None` — callers
    /// (the wire handshake) fall back to the default tenant.
    pub fn resolve(&self, name: &str) -> Option<TenantId> {
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .map(|i| TenantId::new(i as u32))
    }

    /// Number of accounting slots: one per configured tenant plus the
    /// default slot (always last).
    pub(crate) fn slot_count(&self) -> usize {
        self.tenants.len() + 1
    }

    /// The default tenant's accounting slot.
    pub(crate) fn default_slot(&self) -> usize {
        self.tenants.len()
    }

    /// Maps a request's optional tenant id to its accounting slot (unknown
    /// or absent ids land on the default slot).
    pub(crate) fn slot_of(&self, tenant: Option<TenantId>) -> usize {
        match tenant {
            Some(id) if (id.raw() as usize) < self.tenants.len() => id.raw() as usize,
            _ => self.default_slot(),
        }
    }

    /// The display/label name of an accounting slot.
    pub(crate) fn slot_name(&self, slot: usize) -> &str {
        self.tenants
            .get(slot)
            .map_or(DEFAULT_TENANT_NAME, |t| t.name.as_str())
    }

    /// DRR weights per accounting slot (default slot last), each clamped to
    /// at least 1.
    pub(crate) fn slot_weights(&self) -> Vec<u32> {
        self.tenants
            .iter()
            .map(|t| t.weight.max(1))
            .chain(std::iter::once(self.default_weight.max(1)))
            .collect()
    }
}

/// One tenant's token bucket. `None` level means "unthrottled".
#[derive(Debug)]
struct Bucket {
    refill_per_sec: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

impl Bucket {
    fn new(refill_per_sec: f64, burst: f64, now: Instant) -> Self {
        Bucket {
            refill_per_sec: refill_per_sec.max(0.0),
            burst: burst.max(0.0),
            state: Mutex::new(BucketState {
                tokens: burst.max(0.0),
                last_refill: now,
            }),
        }
    }

    /// Refills for the elapsed time, then tries to spend one token.
    /// Returns `(admitted, tokens_after)`.
    fn try_admit(&self, now: Instant) -> (bool, f64) {
        let mut state = self.state.lock().expect("token bucket poisoned");
        let elapsed = now.saturating_duration_since(state.last_refill);
        state.last_refill = now;
        state.tokens = (state.tokens + elapsed.as_secs_f64() * self.refill_per_sec)
            .min(self.burst)
            .max(0.0);
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            (true, state.tokens)
        } else {
            (false, state.tokens)
        }
    }
}

/// The per-tenant token-bucket admitter, one slot per policy tenant (plus
/// the default slot, which is never throttled through the policy's built-in
/// default). Unthrottled tenants carry no bucket and admit unconditionally.
#[derive(Debug)]
pub(crate) struct TokenBucketAdmitter {
    /// `None` for unthrottled slots.
    buckets: Vec<Option<Bucket>>,
    /// `admission.tokens{tenant=…}` gauges, registered for throttled slots
    /// only (an unthrottled tenant has no meaningful level).
    token_gauges: Vec<Option<Gauge>>,
}

impl TokenBucketAdmitter {
    /// Builds the buckets from the policy and registers the token gauges in
    /// `metrics` (names come from the policy's slot labels).
    pub(crate) fn new(policy: &TenantPolicy, metrics: &qsp_obs::MetricsRegistry) -> Self {
        let now = Instant::now();
        let mut buckets = Vec::with_capacity(policy.slot_count());
        let mut token_gauges = Vec::with_capacity(policy.slot_count());
        for slot in 0..policy.slot_count() {
            let config = policy.tenants.get(slot);
            match config {
                Some(t) if t.is_throttled() => {
                    buckets.push(Some(Bucket::new(t.refill_per_sec, t.burst, now)));
                    let gauge =
                        metrics.gauge("admission.tokens", &[("tenant", policy.slot_name(slot))]);
                    gauge.set(t.burst.floor() as i64);
                    token_gauges.push(Some(gauge));
                }
                _ => {
                    buckets.push(None);
                    token_gauges.push(None);
                }
            }
        }
        TokenBucketAdmitter {
            buckets,
            token_gauges,
        }
    }

    /// Admits or throttles one submission for `slot`. Unthrottled slots
    /// always admit.
    pub(crate) fn try_admit(&self, slot: usize) -> bool {
        match self.buckets.get(slot).and_then(Option::as_ref) {
            None => true,
            Some(bucket) => {
                let (admitted, tokens) = bucket.try_admit(Instant::now());
                if let Some(Some(gauge)) = self.token_gauges.get(slot) {
                    gauge.set(tokens.floor() as i64);
                }
                admitted
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn policy_resolution_and_slots() {
        let policy = TenantPolicy::new()
            .with_tenant(TenantConfig::new("acme").with_weight(3))
            .with_tenant(TenantConfig::new("flood").with_rate(10.0, 5.0))
            .with_default_weight(2);
        assert_eq!(policy.resolve("acme"), Some(TenantId::new(0)));
        assert_eq!(policy.resolve("flood"), Some(TenantId::new(1)));
        assert_eq!(policy.resolve("nobody"), None);
        assert_eq!(policy.slot_count(), 3);
        assert_eq!(policy.default_slot(), 2);
        assert_eq!(policy.slot_of(None), 2);
        assert_eq!(policy.slot_of(Some(TenantId::new(1))), 1);
        // Out-of-range ids are billed to the default tenant, not trusted.
        assert_eq!(policy.slot_of(Some(TenantId::new(99))), 2);
        assert_eq!(policy.slot_name(0), "acme");
        assert_eq!(policy.slot_name(2), DEFAULT_TENANT_NAME);
        assert_eq!(policy.slot_weights(), vec![3, 1, 2]);
        assert!(!policy.tenants[0].is_throttled());
        assert!(policy.tenants[1].is_throttled());
    }

    #[test]
    fn empty_policy_is_the_pre_tenancy_behaviour() {
        let policy = TenantPolicy::new();
        assert_eq!(policy.slot_count(), 1);
        assert_eq!(policy.slot_of(Some(TenantId::new(0))), 0);
        assert_eq!(policy.slot_weights(), vec![1]);
        let metrics = qsp_obs::MetricsRegistry::new();
        let admitter = TokenBucketAdmitter::new(&policy, &metrics);
        for _ in 0..10_000 {
            assert!(admitter.try_admit(0));
        }
        // No admission gauge exists for unthrottled tenants.
        assert!(metrics.snapshot().get("admission.tokens").is_none());
    }

    #[test]
    fn bucket_spends_burst_then_throttles() {
        let now = Instant::now();
        let bucket = Bucket::new(1000.0, 4.0, now);
        // Burst capacity admits exactly four back-to-back requests...
        for i in 0..4 {
            let (ok, _) = bucket.try_admit(now);
            assert!(ok, "burst admit {i}");
        }
        // ...and the fifth, at the same instant, is throttled.
        let (ok, tokens) = bucket.try_admit(now);
        assert!(!ok);
        assert!(tokens < 1.0);
    }

    #[test]
    fn bucket_refills_at_the_configured_rate() {
        let now = Instant::now();
        let bucket = Bucket::new(100.0, 10.0, now);
        for _ in 0..10 {
            assert!(bucket.try_admit(now).0);
        }
        assert!(!bucket.try_admit(now).0);
        // 25 ms at 100 tokens/s refills 2.5 tokens: two admits, not three.
        let later = now + Duration::from_millis(25);
        assert!(bucket.try_admit(later).0);
        assert!(bucket.try_admit(later).0);
        assert!(!bucket.try_admit(later).0);
        // A long idle period caps at the burst, never beyond it.
        let much_later = later + Duration::from_secs(3600);
        let mut admitted = 0;
        while bucket.try_admit(much_later).0 {
            admitted += 1;
            assert!(admitted <= 11, "refill must cap at the burst");
        }
        assert_eq!(admitted, 10);
    }

    #[test]
    fn bucket_conservation_property_under_seeded_replay() {
        // Property: over any admission sequence, admits never exceed
        // burst + elapsed * rate (token conservation), and a saturating
        // replay admits at least floor(burst + elapsed * rate) - 1.
        let mut rng_state = 0x5EEDu64;
        let mut next = || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng_state >> 33
        };
        for case in 0..50 {
            let rate = 1.0 + (next() % 500) as f64;
            let burst = 1.0 + (next() % 20) as f64;
            let start = Instant::now();
            let bucket = Bucket::new(rate, burst, start);
            let mut admitted = 0u64;
            let mut t = Duration::ZERO;
            for _ in 0..200 {
                t += Duration::from_micros(next() % 5_000);
                if bucket.try_admit(start + t).0 {
                    admitted += 1;
                }
            }
            let ceiling = burst + t.as_secs_f64() * rate;
            assert!(
                (admitted as f64) <= ceiling + 1e-6,
                "case {case}: admitted {admitted} > ceiling {ceiling}"
            );
        }
        // Saturating replay at fixed cadence: admission rate converges to
        // the refill rate (within one token of the fluid bound).
        let start = Instant::now();
        let bucket = Bucket::new(200.0, 3.0, start);
        let mut admitted = 0u64;
        for step in 0..1000u64 {
            // 1 kHz offered load against a 200/s bucket.
            if bucket.try_admit(start + Duration::from_millis(step)).0 {
                admitted += 1;
            }
        }
        let fluid = 3.0 + 0.999 * 200.0;
        assert!((admitted as f64) <= fluid + 1.0);
        assert!(
            (admitted as f64) >= fluid - 2.0,
            "saturating load must drain the refill: {admitted} vs {fluid}"
        );
    }

    #[test]
    fn admitter_registers_token_gauges_for_throttled_tenants() {
        let policy = TenantPolicy::new()
            .with_tenant(TenantConfig::new("open"))
            .with_tenant(TenantConfig::new("metered").with_rate(1.0, 2.0));
        let metrics = qsp_obs::MetricsRegistry::new();
        let admitter = TokenBucketAdmitter::new(&policy, &metrics);
        assert!(admitter.try_admit(0));
        assert!(admitter.try_admit(1));
        assert!(admitter.try_admit(1));
        assert!(!admitter.try_admit(1), "burst of 2 spent");
        let snapshot = metrics.snapshot();
        let gauge = snapshot
            .get("admission.tokens")
            .expect("metered tenant registers admission.tokens");
        assert_eq!(
            gauge.labels,
            vec![("tenant".to_string(), "metered".to_string())]
        );
    }
}
