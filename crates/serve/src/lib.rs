//! # qsp-serve
//!
//! The deadline-aware synthesis *service*: the long-running request/response
//! front door that turns [`qsp_core::BatchSynthesizer`] from a library call
//! into something a fleet can point traffic at.
//!
//! The service speaks the workspace's unified API
//! ([`qsp_core::api`]): [`SynthesisService::submit`] takes a typed
//! [`SynthesisRequest`] — target plus per-request solver overrides,
//! [`CachePolicy`], deadline and priority — and every completion carries a
//! provenance-rich [`SynthesisReport`] ([`Response::Completed`]), so a
//! caller can tell a fresh solve from a cache hit from an in-flight dedup
//! attach, read per-stage timings, and see the exact configuration its
//! request resolved to. Cost-relevant overrides are fingerprinted into the
//! canonical class key, which keeps per-request policies *dedup-sound*: two
//! requests for the same state under different effective solver options
//! never share a solve.
//!
//! A [`SynthesisService`] owns a worker pool and wires four pieces together:
//!
//! * **A bounded submission queue with explicit backpressure and admission
//!   control** — `submit` never blocks: a request is either queued
//!   (returning a [`RequestHandle`]) or rejected with
//!   [`Submit::Rejected`]` { reason }`, where the [`RejectReason`]
//!   distinguishes per-tenant throttling from capacity backpressure from
//!   shutdown. Each tenant of the service's [`TenantPolicy`] fronts the
//!   queue with its own token bucket (refill rate + burst per
//!   [`TenantConfig`]), so a flooding tenant is turned away before it can
//!   consume shared queue capacity. Queue-depth high-water is tracked for
//!   capacity planning.
//! * **A micro-batching, deadline-aware, weighted-fair scheduler** —
//!   workers drain the queue into micro-batches under a [`SchedulerConfig`]
//!   `{ max_batch, max_wait, workers }` policy. The drain runs deficit
//!   round-robin across per-tenant sub-queues (shares proportional to
//!   [`TenantConfig::weight`]), so no tenant's backlog can starve
//!   another's; inside the drained batch, requests are served
//!   earliest-deadline-first. A request whose deadline has already expired
//!   completes with [`Response::Timeout`] without spending any solver time.
//! * **Per-class in-flight dedup** — a request whose Sec. V-B canonical
//!   class is already being solved *attaches* to that solve instead of
//!   re-entering the queue (replacing the batch engine's phase-based
//!   planning on the serving path). Attached requests get their circuit
//!   reconstructed through their own witness transform, so their
//!   `cnot_cost` is bit-identical to a solo solve. Solved classes land in
//!   the engine's sharded cache, so repeats across the service's lifetime
//!   are cache hits.
//! * **One-shot completion handles and deterministic shutdown** —
//!   [`RequestHandle::wait`]/[`RequestHandle::wait_timeout`] block on a
//!   lightweight one-shot; [`SynthesisService::shutdown`] either drains
//!   ([`Shutdown::Drain`]) or fails pending work with
//!   [`Response::Cancelled`] ([`Shutdown::Abort`]) — handles never hang.
//!
//! Observability rides on the engine's [`qsp_obs::ObsHub`]: every service
//! counter and latency histogram is a `serve.*` metric in the hub's
//! registry ([`ServiceStats`] is a typed view over it, serializable through
//! the workspace-shared [`qsp_core::json`] writer), each completed request's
//! report carries a [`RequestTrace`] span tree (queue wait → validate → key
//! → cache probe → solve → reconstruct, summing exactly to the end-to-end
//! latency) that is also head-sampled into the hub's trace ring, and
//! [`SynthesisService::obs_snapshot`] dumps the whole hub — metrics, sampled
//! traces and solver flight records — in one [`ObsSnapshot`].
//!
//! # Example
//!
//! ```
//! use qsp_serve::{ServiceConfig, Shutdown, SynthesisRequest, SynthesisService};
//! use qsp_state::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = SynthesisService::start(ServiceConfig::default());
//! let a = service.submit(SynthesisRequest::new(generators::ghz(4)?));
//! let b = service.submit(SynthesisRequest::new(generators::ghz(4)?));
//! let (a, b) = (a.handle().unwrap(), b.handle().unwrap());
//! assert_eq!(a.wait().report().unwrap().cnot_cost, 3);
//! assert_eq!(b.wait().report().unwrap().cnot_cost, 3);
//! let stats = service.shutdown(Shutdown::Drain);
//! assert_eq!(stats.completed, 2);
//! // The duplicate GHZ never triggered a second solve — its report's
//! // provenance is a cache hit or an in-flight dedup attach.
//! assert_eq!(stats.solver_runs, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod handle;
mod inflight;
mod queue;
mod service;
mod stats;
mod tenant;

pub use config::{SchedulerConfig, ServiceConfig};
pub use handle::{RequestHandle, Response};
pub use queue::{RejectReason, Submit};
pub use service::{Shutdown, SynthesisService};
pub use stats::{HistogramSnapshot, ServiceStats, TenantStats, HISTOGRAM_BUCKETS};
pub use tenant::{TenantConfig, TenantPolicy, DEFAULT_TENANT_NAME};

// The unified request/outcome contract, re-exported so service callers can
// build requests and read reports without importing qsp-core directly.
pub use qsp_core::api::{
    CachePolicy, Provenance, RequestOptions, StageTimings, SynthesisReport, SynthesisRequest,
    TenantId,
};

// The observability surface service operators read: options to turn tracing
// and the flight recorder on, the snapshot/trace types that come back out.
pub use qsp_obs::{ObsOptions, ObsSnapshot, RequestTrace, SpanKind, TraceId};
