//! Service and scheduler tunables.

use std::time::Duration;

use qsp_core::{BatchOptions, WorkflowConfig};

use crate::tenant::TenantPolicy;

/// Micro-batching policy of the service's worker pool.
///
/// A worker drains the submission queue into *micro-batches*: once at least
/// one request is queued, the drain waits up to [`max_wait`] for the batch to
/// fill to [`max_batch`] requests, then takes whatever arrived. Inside a
/// drain, requests are processed in earliest-deadline-first order.
///
/// [`max_wait`]: SchedulerConfig::max_wait
/// [`max_batch`]: SchedulerConfig::max_batch
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SchedulerConfig {
    /// Maximum requests one drain hands to a worker. Smaller batches lower
    /// the latency a slow request can impose on the ones drained behind it;
    /// larger batches amortize queue locking under heavy load.
    pub max_batch: usize,
    /// How long a drain waits for its batch to fill once the first request
    /// is available. Zero disables the wait entirely (pure work-conserving
    /// draining).
    pub max_wait: Duration,
    /// Worker threads; `0` uses the machine's available parallelism.
    pub workers: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            workers: 0,
        }
    }
}

impl SchedulerConfig {
    /// The effective worker count (at least 1).
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Sets the maximum micro-batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the micro-batch fill wait.
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

/// Full configuration of a [`SynthesisService`](crate::SynthesisService).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Bound of the submission queue. A submission that would overflow it is
    /// rejected with `Submit::Rejected` and
    /// [`RejectReason::QueueFull`](crate::RejectReason::QueueFull) —
    /// backpressure is explicit, never blocking. A capacity of `0` rejects
    /// every submission (useful to drain a deployment).
    pub queue_capacity: usize,
    /// Micro-batching and worker-pool policy.
    pub scheduler: SchedulerConfig,
    /// Workflow configuration of the underlying solver.
    pub workflow: WorkflowConfig,
    /// Dedup policy and cache sharding/eviction of the underlying batch
    /// engine (the `threads` field is ignored; parallelism comes from
    /// [`SchedulerConfig::workers`]).
    pub batch: BatchOptions,
    /// Multi-tenant admission control and weighted-fair drain policy. The
    /// default (no configured tenants) is the pre-tenancy behaviour: every
    /// request lands on the built-in default tenant, unthrottled.
    pub tenants: TenantPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            scheduler: SchedulerConfig::default(),
            workflow: WorkflowConfig::default(),
            batch: BatchOptions::default(),
            tenants: TenantPolicy::default(),
        }
    }
}

impl ServiceConfig {
    /// Sets the submission-queue bound.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the micro-batching and worker-pool policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the base workflow configuration requests resolve against.
    pub fn with_workflow(mut self, workflow: WorkflowConfig) -> Self {
        self.workflow = workflow;
        self
    }

    /// Sets the dedup policy and cache sharding/eviction of the underlying
    /// batch engine.
    pub fn with_batch(mut self, batch: BatchOptions) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the multi-tenant admission and weighted-fair drain policy.
    pub fn with_tenants(mut self, tenants: TenantPolicy) -> Self {
        self.tenants = tenants;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ServiceConfig::default();
        assert_eq!(config.queue_capacity, 1024);
        assert_eq!(config.scheduler.max_batch, 16);
        assert!(config.scheduler.max_wait > Duration::ZERO);
        assert!(config.scheduler.resolved_workers() >= 1);
        assert_eq!(
            SchedulerConfig {
                workers: 3,
                ..SchedulerConfig::default()
            }
            .resolved_workers(),
            3
        );
    }
}
