//! Service and scheduler tunables.

use std::time::Duration;

use qsp_core::{BatchOptions, WorkflowConfig};

/// Micro-batching policy of the service's worker pool.
///
/// A worker drains the submission queue into *micro-batches*: once at least
/// one request is queued, the drain waits up to [`max_wait`] for the batch to
/// fill to [`max_batch`] requests, then takes whatever arrived. Inside a
/// drain, requests are processed in earliest-deadline-first order.
///
/// [`max_wait`]: SchedulerConfig::max_wait
/// [`max_batch`]: SchedulerConfig::max_batch
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum requests one drain hands to a worker. Smaller batches lower
    /// the latency a slow request can impose on the ones drained behind it;
    /// larger batches amortize queue locking under heavy load.
    pub max_batch: usize,
    /// How long a drain waits for its batch to fill once the first request
    /// is available. Zero disables the wait entirely (pure work-conserving
    /// draining).
    pub max_wait: Duration,
    /// Worker threads; `0` uses the machine's available parallelism.
    pub workers: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            workers: 0,
        }
    }
}

impl SchedulerConfig {
    /// The effective worker count (at least 1).
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Full configuration of a [`SynthesisService`](crate::SynthesisService).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Bound of the submission queue. A submission that would overflow it is
    /// rejected with `Submit::Rejected { queue_full: true }` — backpressure
    /// is explicit, never blocking. A capacity of `0` rejects every
    /// submission (useful to drain a deployment).
    pub queue_capacity: usize,
    /// Micro-batching and worker-pool policy.
    pub scheduler: SchedulerConfig,
    /// Workflow configuration of the underlying solver.
    pub workflow: WorkflowConfig,
    /// Dedup policy and cache sharding/eviction of the underlying batch
    /// engine (the `threads` field is ignored; parallelism comes from
    /// [`SchedulerConfig::workers`]).
    pub batch: BatchOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            scheduler: SchedulerConfig::default(),
            workflow: WorkflowConfig::default(),
            batch: BatchOptions::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ServiceConfig::default();
        assert_eq!(config.queue_capacity, 1024);
        assert_eq!(config.scheduler.max_batch, 16);
        assert!(config.scheduler.max_wait > Duration::ZERO);
        assert!(config.scheduler.resolved_workers() >= 1);
        assert_eq!(
            SchedulerConfig {
                workers: 3,
                ..SchedulerConfig::default()
            }
            .resolved_workers(),
            3
        );
    }
}
