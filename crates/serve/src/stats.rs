//! Service counters and latency histograms — a typed view over the
//! engine's [`qsp_obs`] metrics registry.
//!
//! The service owns no counter storage of its own: every counter below is a
//! [`Counter`] handle registered as a `serve.*` metric in the engine's
//! [`ObsHub`](qsp_obs::ObsHub) registry, and the latency histograms are the
//! registry's shared [`Histogram`](qsp_obs::Histogram)s. [`ServiceStats`]
//! keeps its flat, field-per-counter shape (and JSON format) as the stable
//! reading surface; the same numbers also appear — with every other layer's
//! signals — in the hub's [`ObsSnapshot`](qsp_obs::ObsSnapshot).

use qsp_core::json::Value;
use qsp_obs::{Counter, Gauge, MetricsRegistry};

// One histogram implementation serves the whole workspace: the serving
// layer's buckets *are* the registry's.
pub use qsp_obs::{HistogramSnapshot, HISTOGRAM_BUCKETS};

/// The service's counter block: cached `serve.*` [`Counter`] handles, so the
/// completion hot path pays one relaxed `fetch_add` per event — never a
/// registry lookup.
#[derive(Debug)]
pub(crate) struct Counters {
    pub submitted: Counter,
    pub completed: Counter,
    pub failed: Counter,
    pub rejected: Counter,
    pub expired: Counter,
    pub deduped: Counter,
    pub cache_hits: Counter,
    pub solver_runs: Counter,
    pub cancelled: Counter,
    pub keys_exhaustive: Counter,
    pub keys_orbit_pruned: Counter,
    pub keys_greedy: Counter,
    /// Mirror of the submission queue's current depth (`+1` on accept, `-1`
    /// on drain or shutdown cancellation).
    pub queue_depth: Gauge,
}

impl Counters {
    /// Registers (or re-attaches to) the `serve.*` metrics in `metrics`.
    pub(crate) fn new(metrics: &MetricsRegistry) -> Self {
        let counter = |name: &str| metrics.counter(name, &[]);
        Counters {
            submitted: counter("serve.submitted"),
            completed: counter("serve.completed"),
            failed: counter("serve.failed"),
            rejected: counter("serve.rejected"),
            expired: counter("serve.expired"),
            deduped: counter("serve.deduped"),
            cache_hits: counter("serve.cache_hits"),
            solver_runs: counter("serve.solver_runs"),
            cancelled: counter("serve.cancelled"),
            keys_exhaustive: counter("serve.keys.exhaustive"),
            keys_orbit_pruned: counter("serve.keys.orbit_pruned"),
            keys_greedy: counter("serve.keys.orbit_budget_exhausted"),
            queue_depth: metrics.gauge("serve.queue_depth", &[]),
        }
    }
}

/// A point-in-time view of a service's counters and latency histograms.
///
/// Counter identities (stable under concurrency, read at quiescence):
/// `submitted == completed + failed + expired + cancelled + in-flight`, and
/// `completed + failed == solver_runs-resolved + deduped + cache_hits`
/// requests that went through the solve path.
///
/// Every field is read from the engine's metrics registry (`serve.*`
/// metrics), so the identical numbers appear in
/// [`ObsSnapshot`](qsp_obs::ObsSnapshot) dumps.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed with a circuit.
    pub completed: u64,
    /// Requests that failed synthesis.
    pub failed: u64,
    /// Submissions rejected (backpressure or shutdown).
    pub rejected: u64,
    /// Requests whose deadline expired before solving started.
    pub expired: u64,
    /// Requests attached to another request's in-flight solve.
    pub deduped: u64,
    /// Requests served from the cross-batch synthesis cache.
    pub cache_hits: u64,
    /// Fresh solver invocations.
    pub solver_runs: u64,
    /// Requests cancelled by shutdown.
    pub cancelled: u64,
    /// Requests keyed over the full permutation × flip space (single color
    /// orbit within budget — see
    /// [`KeyCoverage`](qsp_core::KeyCoverage)).
    pub keys_exhaustive: u64,
    /// Requests keyed by the orbit-restricted enumeration (same class
    /// partition as exhaustive at a fraction of the work).
    pub keys_orbit_pruned: u64,
    /// Requests that exceeded the keying budget and took the greedy key. A
    /// rising share means in-flight/cache dedup coverage is degrading for
    /// wide symmetric targets — raise the engine's
    /// [`orbit_node_budget`](qsp_core::BatchOptions::orbit_node_budget) if
    /// their solves are expensive.
    pub keys_greedy: u64,
    /// The deepest the submission queue has ever been.
    pub queue_high_water: usize,
    /// Current queue depth (at snapshot time).
    pub queue_depth: usize,
    /// Classes currently being solved (at snapshot time).
    pub in_flight_classes: usize,
    /// Latency from submission to worker drain.
    pub queue_wait: HistogramSnapshot,
    /// Latency from worker drain to completion.
    pub service_time: HistogramSnapshot,
    /// Latency from submission to completion.
    pub end_to_end: HistogramSnapshot,
}

impl ServiceStats {
    /// The stats as a JSON value (for dashboards and the bench report).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("submitted".to_string(), Value::Num(self.submitted)),
            ("completed".to_string(), Value::Num(self.completed)),
            ("failed".to_string(), Value::Num(self.failed)),
            ("rejected".to_string(), Value::Num(self.rejected)),
            ("expired".to_string(), Value::Num(self.expired)),
            ("deduped".to_string(), Value::Num(self.deduped)),
            ("cache_hits".to_string(), Value::Num(self.cache_hits)),
            ("solver_runs".to_string(), Value::Num(self.solver_runs)),
            ("cancelled".to_string(), Value::Num(self.cancelled)),
            (
                "keys_exhaustive".to_string(),
                Value::Num(self.keys_exhaustive),
            ),
            (
                "keys_orbit_pruned".to_string(),
                Value::Num(self.keys_orbit_pruned),
            ),
            ("keys_greedy".to_string(), Value::Num(self.keys_greedy)),
            (
                "queue_high_water".to_string(),
                Value::Num(self.queue_high_water as u64),
            ),
            (
                "queue_depth".to_string(),
                Value::Num(self.queue_depth as u64),
            ),
            (
                "in_flight_classes".to_string(),
                Value::Num(self.in_flight_classes as u64),
            ),
            ("queue_wait".to_string(), self.queue_wait.to_json()),
            ("service_time".to_string(), self.service_time.to_json()),
            ("end_to_end".to_string(), self.end_to_end.to_json()),
        ])
    }

    /// The stats as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_obs::Histogram;
    use std::time::Duration;

    #[test]
    fn counters_are_registry_views() {
        let metrics = MetricsRegistry::new();
        let counters = Counters::new(&metrics);
        counters.submitted.inc();
        counters.submitted.inc();
        counters.queue_depth.add(3);
        counters.queue_depth.sub(1);
        // The registry sees exactly what the handles recorded — same
        // storage, not a copy.
        let snapshot = metrics.snapshot();
        let submitted = snapshot.get("serve.submitted").unwrap();
        assert_eq!(submitted.value, qsp_obs::MetricValue::Counter(2));
        let depth = snapshot.get("serve.queue_depth").unwrap();
        assert_eq!(depth.value, qsp_obs::MetricValue::Gauge(2));
        // Re-attaching yields handles to the same storage.
        let again = Counters::new(&metrics);
        again.submitted.inc();
        assert_eq!(counters.submitted.get(), 3);
    }

    #[test]
    fn stats_serialize_to_parseable_json() {
        let histogram = Histogram::new();
        histogram.record(Duration::from_micros(10));
        let stats = ServiceStats {
            submitted: 5,
            completed: 3,
            failed: 0,
            rejected: 1,
            expired: 1,
            deduped: 2,
            cache_hits: 1,
            solver_runs: 1,
            cancelled: 0,
            keys_exhaustive: 2,
            keys_orbit_pruned: 1,
            keys_greedy: 0,
            queue_high_water: 4,
            queue_depth: 0,
            in_flight_classes: 0,
            queue_wait: histogram.snapshot(),
            service_time: histogram.snapshot(),
            end_to_end: histogram.snapshot(),
        };
        let parsed = qsp_core::json::parse(&stats.to_json_string()).unwrap();
        assert_eq!(parsed.get("submitted").unwrap().as_u64(), Some(5));
        assert_eq!(parsed.get("deduped").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("keys_exhaustive").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("keys_orbit_pruned").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("keys_greedy").unwrap().as_u64(), Some(0));
        let wait = parsed.get("queue_wait").unwrap();
        assert_eq!(wait.get("count").unwrap().as_u64(), Some(1));
        assert!(wait.get("p95_ms").unwrap().as_f64().unwrap() > 0.0);
    }
}
