//! Service counters and plain-bucket latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use qsp_core::json::Value;

/// Number of histogram buckets: bucket `i < 25` counts latencies below
/// `2^i` microseconds (the bounded range tops out at `2^24` µs ≈ 16.8 s);
/// the last bucket is the unbounded overflow.
pub const HISTOGRAM_BUCKETS: usize = 26;

/// A fixed-bucket, lock-free latency histogram. Buckets are powers of two
/// in microseconds — coarse, but cheap enough to sit on the completion hot
/// path and plenty for p50/p95/p99 reporting.
#[derive(Debug)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub(crate) fn record(&self, latency: Duration) {
        self.buckets[bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// The bucket index of a latency: the bit length of its microsecond count
/// (0 µs → bucket 0), clamped to the overflow bucket.
fn bucket_of(latency: Duration) -> usize {
    let micros = latency.as_micros();
    let bits = (u128::BITS - micros.leading_zeros()) as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; bucket `i` covers latencies below
    /// [`HistogramSnapshot::bucket_upper_bound`]`(i)`.
    pub counts: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// The exclusive upper bound of bucket `i`. The last bucket is
    /// unbounded; the value returned for it (`2^25` µs ≈ 33.5 s) is the
    /// clamp [`HistogramSnapshot::percentile`] reports overflow
    /// observations at.
    pub fn bucket_upper_bound(i: usize) -> Duration {
        Duration::from_micros(1u64 << i.min(HISTOGRAM_BUCKETS - 1))
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// An upper bound on the `p`-quantile latency (`p` in `[0, 1]`): the
    /// upper bound of the bucket the quantile falls in. Zero when empty.
    /// Quantiles landing in the unbounded overflow bucket are *clamped* to
    /// its nominal bound (≈ 33.5 s) — a true tail latency beyond that is
    /// reported as the clamp, not an upper bound.
    pub fn percentile(&self, p: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// The histogram as JSON: bucket counts plus p50/p95/p99 milliseconds.
    pub fn to_json(&self) -> Value {
        let quantile_ms = |p: f64| Value::Float(self.percentile(p).as_secs_f64() * 1e3);
        Value::Object(vec![
            ("count".to_string(), Value::Num(self.count())),
            ("p50_ms".to_string(), quantile_ms(0.50)),
            ("p95_ms".to_string(), quantile_ms(0.95)),
            ("p99_ms".to_string(), quantile_ms(0.99)),
            (
                "bucket_counts".to_string(),
                Value::Array(self.counts.iter().map(|&c| Value::Num(c)).collect()),
            ),
        ])
    }
}

/// The service's atomic counter block.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected: AtomicU64,
    pub expired: AtomicU64,
    pub deduped: AtomicU64,
    pub cache_hits: AtomicU64,
    pub solver_runs: AtomicU64,
    pub cancelled: AtomicU64,
    pub keys_exhaustive: AtomicU64,
    pub keys_orbit_pruned: AtomicU64,
    pub keys_greedy: AtomicU64,
}

impl Counters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time view of a service's counters and latency histograms.
///
/// Counter identities (stable under concurrency, read at quiescence):
/// `submitted == completed + failed + expired + cancelled + in-flight`, and
/// `completed + failed == solver_runs-resolved + deduped + cache_hits`
/// requests that went through the solve path.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed with a circuit.
    pub completed: u64,
    /// Requests that failed synthesis.
    pub failed: u64,
    /// Submissions rejected (backpressure or shutdown).
    pub rejected: u64,
    /// Requests whose deadline expired before solving started.
    pub expired: u64,
    /// Requests attached to another request's in-flight solve.
    pub deduped: u64,
    /// Requests served from the cross-batch synthesis cache.
    pub cache_hits: u64,
    /// Fresh solver invocations.
    pub solver_runs: u64,
    /// Requests cancelled by shutdown.
    pub cancelled: u64,
    /// Requests keyed over the full permutation × flip space (single color
    /// orbit within budget — see
    /// [`KeyCoverage`](qsp_core::KeyCoverage)).
    pub keys_exhaustive: u64,
    /// Requests keyed by the orbit-restricted enumeration (same class
    /// partition as exhaustive at a fraction of the work).
    pub keys_orbit_pruned: u64,
    /// Requests that exceeded the keying budget and took the greedy key. A
    /// rising share means in-flight/cache dedup coverage is degrading for
    /// wide symmetric targets — raise the engine's
    /// [`orbit_node_budget`](qsp_core::BatchOptions::orbit_node_budget) if
    /// their solves are expensive.
    pub keys_greedy: u64,
    /// The deepest the submission queue has ever been.
    pub queue_high_water: usize,
    /// Current queue depth (at snapshot time).
    pub queue_depth: usize,
    /// Classes currently being solved (at snapshot time).
    pub in_flight_classes: usize,
    /// Latency from submission to worker drain.
    pub queue_wait: HistogramSnapshot,
    /// Latency from worker drain to completion.
    pub service_time: HistogramSnapshot,
    /// Latency from submission to completion.
    pub end_to_end: HistogramSnapshot,
}

impl ServiceStats {
    /// The stats as a JSON value (for dashboards and the bench report).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("submitted".to_string(), Value::Num(self.submitted)),
            ("completed".to_string(), Value::Num(self.completed)),
            ("failed".to_string(), Value::Num(self.failed)),
            ("rejected".to_string(), Value::Num(self.rejected)),
            ("expired".to_string(), Value::Num(self.expired)),
            ("deduped".to_string(), Value::Num(self.deduped)),
            ("cache_hits".to_string(), Value::Num(self.cache_hits)),
            ("solver_runs".to_string(), Value::Num(self.solver_runs)),
            ("cancelled".to_string(), Value::Num(self.cancelled)),
            (
                "keys_exhaustive".to_string(),
                Value::Num(self.keys_exhaustive),
            ),
            (
                "keys_orbit_pruned".to_string(),
                Value::Num(self.keys_orbit_pruned),
            ),
            ("keys_greedy".to_string(), Value::Num(self.keys_greedy)),
            (
                "queue_high_water".to_string(),
                Value::Num(self.queue_high_water as u64),
            ),
            (
                "queue_depth".to_string(),
                Value::Num(self.queue_depth as u64),
            ),
            (
                "in_flight_classes".to_string(),
                Value::Num(self.in_flight_classes as u64),
            ),
            ("queue_wait".to_string(), self.queue_wait.to_json()),
            ("service_time".to_string(), self.service_time.to_json()),
            ("end_to_end".to_string(), self.end_to_end.to_json()),
        ])
    }

    /// The stats as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_latency_range() {
        assert_eq!(bucket_of(Duration::ZERO), 0);
        assert_eq!(bucket_of(Duration::from_micros(1)), 1);
        assert_eq!(bucket_of(Duration::from_micros(2)), 2);
        assert_eq!(bucket_of(Duration::from_micros(3)), 2);
        assert_eq!(bucket_of(Duration::from_micros(1023)), 10);
        // Far beyond the range clamps into the overflow bucket.
        assert_eq!(bucket_of(Duration::from_secs(3600)), HISTOGRAM_BUCKETS - 1);
        // Every bucket's upper bound is inside the next bucket.
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_of(HistogramSnapshot::bucket_upper_bound(i)), i + 1);
        }
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let histogram = LatencyHistogram::new();
        assert_eq!(histogram.snapshot().percentile(0.5), Duration::ZERO);
        // 90 fast observations (~4 µs) and 10 slow (~1 ms).
        for _ in 0..90 {
            histogram.record(Duration::from_micros(3));
        }
        for _ in 0..10 {
            histogram.record(Duration::from_micros(900));
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 100);
        assert_eq!(snapshot.percentile(0.5), Duration::from_micros(4));
        assert_eq!(snapshot.percentile(0.9), Duration::from_micros(4));
        assert_eq!(snapshot.percentile(0.95), Duration::from_micros(1024));
        assert_eq!(snapshot.percentile(0.99), Duration::from_micros(1024));
        assert!(snapshot.percentile(1.0) >= snapshot.percentile(0.5));
    }

    #[test]
    fn stats_serialize_to_parseable_json() {
        let histogram = LatencyHistogram::new();
        histogram.record(Duration::from_micros(10));
        let stats = ServiceStats {
            submitted: 5,
            completed: 3,
            failed: 0,
            rejected: 1,
            expired: 1,
            deduped: 2,
            cache_hits: 1,
            solver_runs: 1,
            cancelled: 0,
            keys_exhaustive: 2,
            keys_orbit_pruned: 1,
            keys_greedy: 0,
            queue_high_water: 4,
            queue_depth: 0,
            in_flight_classes: 0,
            queue_wait: histogram.snapshot(),
            service_time: histogram.snapshot(),
            end_to_end: histogram.snapshot(),
        };
        let parsed = qsp_core::json::parse(&stats.to_json_string()).unwrap();
        assert_eq!(parsed.get("submitted").unwrap().as_u64(), Some(5));
        assert_eq!(parsed.get("deduped").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("keys_exhaustive").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("keys_orbit_pruned").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("keys_greedy").unwrap().as_u64(), Some(0));
        let wait = parsed.get("queue_wait").unwrap();
        assert_eq!(wait.get("count").unwrap().as_u64(), Some(1));
        assert!(wait.get("p95_ms").unwrap().as_f64().unwrap() > 0.0);
    }
}
