//! Service counters and latency histograms — a typed view over the
//! engine's [`qsp_obs`] metrics registry.
//!
//! The service owns no counter storage of its own: every counter below is a
//! [`Counter`] handle registered as a `serve.*` metric in the engine's
//! [`ObsHub`](qsp_obs::ObsHub) registry, and the latency histograms are the
//! registry's shared [`Histogram`](qsp_obs::Histogram)s. [`ServiceStats`]
//! keeps its flat, field-per-counter shape (and JSON format) as the stable
//! reading surface; the same numbers also appear — with every other layer's
//! signals — in the hub's [`ObsSnapshot`](qsp_obs::ObsSnapshot).
//!
//! Tenancy adds a per-tenant slice: each accounting slot (every configured
//! tenant plus the built-in default) carries its own
//! `serve.tenant.*{tenant=…}` counters, a `serve.tenant.queue_depth` gauge
//! and a `serve.tenant.queue_wait` histogram, surfaced as a
//! [`TenantStats`] row in [`ServiceStats::tenants`].

use std::sync::Arc;

use qsp_core::json::Value;
use qsp_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::tenant::TenantPolicy;

// One histogram implementation serves the whole workspace: the serving
// layer's buckets *are* the registry's.
pub use qsp_obs::{HistogramSnapshot, HISTOGRAM_BUCKETS};

/// The service's counter block: cached `serve.*` [`Counter`] handles, so the
/// completion hot path pays one relaxed `fetch_add` per event — never a
/// registry lookup.
#[derive(Debug)]
pub(crate) struct Counters {
    pub submitted: Counter,
    pub completed: Counter,
    pub failed: Counter,
    pub rejected: Counter,
    /// Submissions turned away by per-tenant admission control (disjoint
    /// from `rejected`, which counts backpressure and shutdown).
    pub throttled: Counter,
    pub expired: Counter,
    pub deduped: Counter,
    pub cache_hits: Counter,
    pub solver_runs: Counter,
    pub cancelled: Counter,
    pub keys_exhaustive: Counter,
    pub keys_orbit_pruned: Counter,
    pub keys_greedy: Counter,
    pub keys_sig_fast_path: Counter,
    pub template_hits: Counter,
    /// Mirror of the submission queue's current depth (`+1` on accept, `-1`
    /// on drain or shutdown cancellation).
    pub queue_depth: Gauge,
    /// Per-tenant counter blocks, indexed by accounting slot (default slot
    /// last, parallel to [`TenantPolicy`]'s slot layout).
    pub tenants: Vec<TenantCounters>,
}

/// One tenant's `serve.tenant.*{tenant=…}` metric handles.
///
/// Unlike the global `serve.submitted` (which counts *accepted* requests),
/// the per-tenant `submitted` counts every submission attempt, so the
/// per-tenant conservation identity holds at quiescence:
/// `submitted == completed + failed + throttled + rejected + expired +
/// cancelled`.
#[derive(Debug)]
pub(crate) struct TenantCounters {
    /// The tenant's metric-label name.
    pub name: String,
    pub submitted: Counter,
    pub throttled: Counter,
    pub rejected: Counter,
    pub completed: Counter,
    pub expired: Counter,
    pub failed: Counter,
    pub cancelled: Counter,
    /// Mirror of the tenant's sub-queue depth, zero after a `Drain`.
    pub queue_depth: Gauge,
    pub queue_wait: Arc<Histogram>,
}

impl TenantCounters {
    fn new(metrics: &MetricsRegistry, name: &str) -> Self {
        let labels = &[("tenant", name)];
        let counter = |metric: &str| metrics.counter(metric, labels);
        TenantCounters {
            name: name.to_string(),
            submitted: counter("serve.tenant.submitted"),
            throttled: counter("serve.tenant.throttled"),
            rejected: counter("serve.tenant.rejected"),
            completed: counter("serve.tenant.completed"),
            expired: counter("serve.tenant.expired"),
            failed: counter("serve.tenant.failed"),
            cancelled: counter("serve.tenant.cancelled"),
            queue_depth: metrics.gauge("serve.tenant.queue_depth", labels),
            queue_wait: metrics.histogram("serve.tenant.queue_wait", labels),
        }
    }
}

impl Counters {
    /// Registers (or re-attaches to) the `serve.*` metrics in `metrics`,
    /// including one `serve.tenant.*` block per accounting slot of `policy`.
    pub(crate) fn new(metrics: &MetricsRegistry, policy: &TenantPolicy) -> Self {
        let counter = |name: &str| metrics.counter(name, &[]);
        Counters {
            submitted: counter("serve.submitted"),
            completed: counter("serve.completed"),
            failed: counter("serve.failed"),
            rejected: counter("serve.rejected"),
            throttled: counter("serve.throttled"),
            expired: counter("serve.expired"),
            deduped: counter("serve.deduped"),
            cache_hits: counter("serve.cache_hits"),
            solver_runs: counter("serve.solver_runs"),
            cancelled: counter("serve.cancelled"),
            keys_exhaustive: counter("serve.keys.exhaustive"),
            keys_orbit_pruned: counter("serve.keys.orbit_pruned"),
            keys_greedy: counter("serve.keys.orbit_budget_exhausted"),
            keys_sig_fast_path: counter("serve.keys.sig_fast_path"),
            template_hits: counter("serve.template_hits"),
            queue_depth: metrics.gauge("serve.queue_depth", &[]),
            tenants: (0..policy.slot_count())
                .map(|slot| TenantCounters::new(metrics, policy.slot_name(slot)))
                .collect(),
        }
    }
}

/// A point-in-time view of a service's counters and latency histograms.
///
/// Counter identities (stable under concurrency, read at quiescence):
/// `submitted == completed + failed + expired + cancelled + in-flight`, and
/// `completed + failed == solver_runs-resolved + template_hits + deduped +
/// cache_hits` requests that went through the solve path (a template hit is
/// a class owner served by replaying a cached class template instead of
/// running the solver). Per tenant (see
/// [`TenantStats`]), `submitted` counts *attempts*, so
/// `submitted == completed + failed + throttled + rejected + expired +
/// cancelled` at quiescence.
///
/// Every field is read from the engine's metrics registry (`serve.*`
/// metrics), so the identical numbers appear in
/// [`ObsSnapshot`](qsp_obs::ObsSnapshot) dumps.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed with a circuit.
    pub completed: u64,
    /// Requests that failed synthesis.
    pub failed: u64,
    /// Submissions rejected (backpressure or shutdown).
    pub rejected: u64,
    /// Submissions refused by per-tenant admission control (token bucket
    /// empty). Disjoint from `rejected`.
    pub throttled: u64,
    /// Requests whose deadline expired before solving started.
    pub expired: u64,
    /// Requests attached to another request's in-flight solve.
    pub deduped: u64,
    /// Requests served from the cross-batch synthesis cache.
    pub cache_hits: u64,
    /// Fresh solver invocations.
    pub solver_runs: u64,
    /// Requests cancelled by shutdown.
    pub cancelled: u64,
    /// Requests keyed over the full permutation × flip space (single color
    /// orbit within budget — see
    /// [`KeyCoverage`](qsp_core::KeyCoverage)).
    pub keys_exhaustive: u64,
    /// Requests keyed by the orbit-restricted enumeration (same class
    /// partition as exhaustive at a fraction of the work).
    pub keys_orbit_pruned: u64,
    /// Requests that exceeded the keying budget and took the greedy key. A
    /// rising share means in-flight/cache dedup coverage is degrading for
    /// wide symmetric targets — raise the engine's
    /// [`orbit_node_budget`](qsp_core::BatchOptions::orbit_node_budget) if
    /// their solves are expensive.
    pub keys_greedy: u64,
    /// Requests keyed on the stage-0 signature alone by the tiered fast
    /// path (fresh or exactly repeated signatures — no permutation
    /// enumeration at all; the class partition is unchanged).
    pub keys_sig_fast_path: u64,
    /// Class owners served by replaying a support-pattern class template
    /// with their own amplitudes instead of running the A* solver (their
    /// provenance is
    /// [`Provenance::TemplateInstantiated`](qsp_core::Provenance)).
    pub template_hits: u64,
    /// The deepest the submission queue has ever been.
    pub queue_high_water: usize,
    /// Current queue depth (at snapshot time).
    pub queue_depth: usize,
    /// Classes currently being solved (at snapshot time).
    pub in_flight_classes: usize,
    /// Latency from submission to worker drain.
    pub queue_wait: HistogramSnapshot,
    /// Latency from worker drain to completion.
    pub service_time: HistogramSnapshot,
    /// Latency from submission to completion.
    pub end_to_end: HistogramSnapshot,
    /// Per-tenant slices, one per accounting slot (every configured tenant
    /// plus the built-in default tenant, last).
    pub tenants: Vec<TenantStats>,
}

/// One tenant's slice of the service stats.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// The tenant name (metric label; `"default"` for the built-in slot).
    pub name: String,
    /// Submission *attempts* billed to this tenant (accepted or not).
    pub submitted: u64,
    /// Attempts refused by the tenant's token bucket.
    pub throttled: u64,
    /// Attempts rejected by backpressure or shutdown.
    pub rejected: u64,
    /// Requests completed with a circuit.
    pub completed: u64,
    /// Requests whose deadline expired before solving started.
    pub expired: u64,
    /// Requests that failed synthesis.
    pub failed: u64,
    /// Requests cancelled by shutdown.
    pub cancelled: u64,
    /// The tenant's sub-queue depth at snapshot time.
    pub queue_depth: usize,
    /// Latency from submission to worker drain, for this tenant only.
    pub queue_wait: HistogramSnapshot,
}

impl TenantStats {
    /// The per-tenant conservation identity: at quiescence every attempt is
    /// accounted for by exactly one outcome.
    pub fn is_conserved(&self) -> bool {
        self.submitted
            == self.completed
                + self.failed
                + self.throttled
                + self.rejected
                + self.expired
                + self.cancelled
    }

    /// The tenant slice as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("submitted".to_string(), Value::Num(self.submitted)),
            ("throttled".to_string(), Value::Num(self.throttled)),
            ("rejected".to_string(), Value::Num(self.rejected)),
            ("completed".to_string(), Value::Num(self.completed)),
            ("expired".to_string(), Value::Num(self.expired)),
            ("failed".to_string(), Value::Num(self.failed)),
            ("cancelled".to_string(), Value::Num(self.cancelled)),
            (
                "queue_depth".to_string(),
                Value::Num(self.queue_depth as u64),
            ),
            ("queue_wait".to_string(), self.queue_wait.to_json()),
        ])
    }
}

impl ServiceStats {
    /// The stats as a JSON value (for dashboards and the bench report).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("submitted".to_string(), Value::Num(self.submitted)),
            ("completed".to_string(), Value::Num(self.completed)),
            ("failed".to_string(), Value::Num(self.failed)),
            ("rejected".to_string(), Value::Num(self.rejected)),
            ("throttled".to_string(), Value::Num(self.throttled)),
            ("expired".to_string(), Value::Num(self.expired)),
            ("deduped".to_string(), Value::Num(self.deduped)),
            ("cache_hits".to_string(), Value::Num(self.cache_hits)),
            ("solver_runs".to_string(), Value::Num(self.solver_runs)),
            ("cancelled".to_string(), Value::Num(self.cancelled)),
            (
                "keys_exhaustive".to_string(),
                Value::Num(self.keys_exhaustive),
            ),
            (
                "keys_orbit_pruned".to_string(),
                Value::Num(self.keys_orbit_pruned),
            ),
            ("keys_greedy".to_string(), Value::Num(self.keys_greedy)),
            (
                "keys_sig_fast_path".to_string(),
                Value::Num(self.keys_sig_fast_path),
            ),
            ("template_hits".to_string(), Value::Num(self.template_hits)),
            (
                "queue_high_water".to_string(),
                Value::Num(self.queue_high_water as u64),
            ),
            (
                "queue_depth".to_string(),
                Value::Num(self.queue_depth as u64),
            ),
            (
                "in_flight_classes".to_string(),
                Value::Num(self.in_flight_classes as u64),
            ),
            ("queue_wait".to_string(), self.queue_wait.to_json()),
            ("service_time".to_string(), self.service_time.to_json()),
            ("end_to_end".to_string(), self.end_to_end.to_json()),
            (
                "tenants".to_string(),
                Value::Array(self.tenants.iter().map(TenantStats::to_json).collect()),
            ),
        ])
    }

    /// The stats as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_obs::Histogram;
    use std::time::Duration;

    #[test]
    fn counters_are_registry_views() {
        let metrics = MetricsRegistry::new();
        let counters = Counters::new(&metrics, &TenantPolicy::default());
        counters.submitted.inc();
        counters.submitted.inc();
        counters.queue_depth.add(3);
        counters.queue_depth.sub(1);
        // The registry sees exactly what the handles recorded — same
        // storage, not a copy.
        let snapshot = metrics.snapshot();
        let submitted = snapshot.get("serve.submitted").unwrap();
        assert_eq!(submitted.value, qsp_obs::MetricValue::Counter(2));
        let depth = snapshot.get("serve.queue_depth").unwrap();
        assert_eq!(depth.value, qsp_obs::MetricValue::Gauge(2));
        // Re-attaching yields handles to the same storage.
        let again = Counters::new(&metrics, &TenantPolicy::default());
        again.submitted.inc();
        assert_eq!(counters.submitted.get(), 3);
    }

    #[test]
    fn tenant_counters_are_labelled_slices() {
        use crate::tenant::TenantConfig;
        let metrics = MetricsRegistry::new();
        let policy = TenantPolicy::default()
            .with_tenant(TenantConfig::new("acme"))
            .with_tenant(TenantConfig::new("beta"));
        let counters = Counters::new(&metrics, &policy);
        assert_eq!(counters.tenants.len(), 3);
        assert_eq!(counters.tenants[0].name, "acme");
        assert_eq!(counters.tenants[2].name, crate::tenant::DEFAULT_TENANT_NAME);
        counters.tenants[1].submitted.add(4);
        let snapshot = metrics.snapshot();
        let beta = snapshot
            .samples
            .iter()
            .find(|s| {
                s.name == "serve.tenant.submitted"
                    && s.labels == vec![("tenant".to_string(), "beta".to_string())]
            })
            .expect("labelled tenant counter registered");
        assert_eq!(beta.value, qsp_obs::MetricValue::Counter(4));
    }

    fn zeroed_tenant(name: &str) -> TenantStats {
        TenantStats {
            name: name.to_string(),
            submitted: 0,
            throttled: 0,
            rejected: 0,
            completed: 0,
            expired: 0,
            failed: 0,
            cancelled: 0,
            queue_depth: 0,
            queue_wait: Histogram::new().snapshot(),
        }
    }

    #[test]
    fn tenant_conservation_identity() {
        let mut tenant = zeroed_tenant("t");
        tenant.submitted = 10;
        tenant.completed = 6;
        tenant.throttled = 2;
        tenant.expired = 1;
        tenant.rejected = 1;
        assert!(tenant.is_conserved());
        tenant.submitted = 11;
        assert!(!tenant.is_conserved());
    }

    #[test]
    fn stats_serialize_to_parseable_json() {
        let histogram = Histogram::new();
        histogram.record(Duration::from_micros(10));
        let mut tenant = zeroed_tenant("default");
        tenant.submitted = 5;
        tenant.completed = 3;
        tenant.throttled = 2;
        let stats = ServiceStats {
            submitted: 5,
            completed: 3,
            failed: 0,
            rejected: 1,
            throttled: 2,
            expired: 1,
            deduped: 2,
            cache_hits: 1,
            solver_runs: 1,
            cancelled: 0,
            keys_exhaustive: 2,
            keys_orbit_pruned: 1,
            keys_greedy: 0,
            keys_sig_fast_path: 2,
            template_hits: 1,
            queue_high_water: 4,
            queue_depth: 0,
            in_flight_classes: 0,
            queue_wait: histogram.snapshot(),
            service_time: histogram.snapshot(),
            end_to_end: histogram.snapshot(),
            tenants: vec![tenant],
        };
        let parsed = qsp_core::json::parse(&stats.to_json_string()).unwrap();
        assert_eq!(parsed.get("submitted").unwrap().as_u64(), Some(5));
        assert_eq!(parsed.get("deduped").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("throttled").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("keys_exhaustive").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("keys_orbit_pruned").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("keys_greedy").unwrap().as_u64(), Some(0));
        assert_eq!(parsed.get("keys_sig_fast_path").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("template_hits").unwrap().as_u64(), Some(1));
        let wait = parsed.get("queue_wait").unwrap();
        assert_eq!(wait.get("count").unwrap().as_u64(), Some(1));
        assert!(wait.get("p95_ms").unwrap().as_f64().unwrap() > 0.0);
        let tenants = parsed.get("tenants").unwrap().as_array().unwrap();
        assert_eq!(tenants.len(), 1);
        assert_eq!(tenants[0].get("name").unwrap().as_str(), Some("default"));
        assert_eq!(tenants[0].get("throttled").unwrap().as_u64(), Some(2));
    }
}
