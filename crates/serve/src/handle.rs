//! One-shot completion handles.
//!
//! Every accepted submission returns a [`RequestHandle`]; the worker that
//! finishes the request completes the paired [`Completer`] exactly once. The
//! channel is a `Mutex<Option<Response>>` plus a `Condvar` — deliberately
//! lighter than a full MPSC channel, since exactly one value ever crosses
//! it. A `Completer` dropped without completing (worker panic, service
//! teardown) resolves its handle with [`Response::Cancelled`], so a handle
//! can never hang on a request the service will not finish.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use qsp_circuit::Circuit;
use qsp_core::{SynthesisError, SynthesisReport};

/// The terminal state of one request.
// A completed report (circuit + provenance + timings + trace) dwarfs the
// other variants, but it crosses the one-shot exactly once and boxing it
// would buy that move at the cost of an allocation per completion.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The provenance-rich synthesis report for the submitted request:
    /// circuit, `cnot_cost`, [`Provenance`](qsp_core::Provenance) (fresh
    /// solve / cache hit / in-flight dedup attach), per-stage timings and
    /// the effective resolved configuration.
    Completed(SynthesisReport),
    /// Synthesis failed (unsupported or invalid target).
    Failed(SynthesisError),
    /// The request's deadline expired before a worker started solving it;
    /// no solver time was spent on it.
    Timeout,
    /// The service shut down (or tore down) before the request was solved.
    Cancelled,
}

impl Response {
    /// The full synthesis report, if the request completed successfully.
    pub fn report(&self) -> Option<&SynthesisReport> {
        match self {
            Response::Completed(report) => Some(report),
            _ => None,
        }
    }

    /// The circuit, if the request completed successfully.
    pub fn circuit(&self) -> Option<&Circuit> {
        self.report().map(|report| &report.circuit)
    }

    /// Whether the request completed with a circuit.
    pub fn is_completed(&self) -> bool {
        matches!(self, Response::Completed(_))
    }
}

#[derive(Debug)]
struct OneShot {
    slot: Mutex<Option<Response>>,
    ready: Condvar,
}

/// The caller's side of a one-shot completion: blocks until the service
/// resolves the request.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    shot: Arc<OneShot>,
}

impl RequestHandle {
    /// Blocks until the request resolves.
    pub fn wait(&self) -> Response {
        let mut slot = self.shot.slot.lock().expect("one-shot poisoned");
        loop {
            if let Some(response) = slot.as_ref() {
                return response.clone();
            }
            slot = self.shot.ready.wait(slot).expect("one-shot poisoned");
        }
    }

    /// Blocks until the request resolves or `timeout` elapses; `None` means
    /// the request is still pending (the handle stays usable).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Response> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.shot.slot.lock().expect("one-shot poisoned");
        loop {
            if let Some(response) = slot.as_ref() {
                return Some(response.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shot
                .ready
                .wait_timeout(slot, deadline - now)
                .expect("one-shot poisoned");
            slot = guard;
        }
    }

    /// The response if the request has already resolved, without blocking.
    pub fn try_response(&self) -> Option<Response> {
        self.shot.slot.lock().expect("one-shot poisoned").clone()
    }
}

/// The service's side of a one-shot completion. Completing consumes it;
/// dropping it unresolved cancels the paired handle.
#[derive(Debug)]
pub(crate) struct Completer {
    shot: Arc<OneShot>,
}

impl Completer {
    /// Resolves the paired handle. Exactly-once is enforced by consumption.
    pub(crate) fn complete(self, response: Response) {
        self.set(response);
    }

    fn set(&self, response: Response) {
        let mut slot = self.shot.slot.lock().expect("one-shot poisoned");
        if slot.is_none() {
            *slot = Some(response);
            self.shot.ready.notify_all();
        }
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        // `complete` fills the slot before this runs; an unresolved drop
        // (panic unwind, teardown) must still release any waiter.
        self.set(Response::Cancelled);
    }
}

/// Creates a connected handle/completer pair.
pub(crate) fn oneshot() -> (RequestHandle, Completer) {
    let shot = Arc::new(OneShot {
        slot: Mutex::new(None),
        ready: Condvar::new(),
    });
    (
        RequestHandle {
            shot: Arc::clone(&shot),
        },
        Completer { shot },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_unblocks_wait() {
        let (handle, completer) = oneshot();
        assert_eq!(handle.try_response(), None);
        let waiter = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.wait())
        };
        completer.complete(Response::Timeout);
        assert_eq!(waiter.join().unwrap(), Response::Timeout);
        // The response is sticky and repeatable.
        assert_eq!(handle.wait(), Response::Timeout);
        assert_eq!(handle.try_response(), Some(Response::Timeout));
        assert_eq!(handle.wait_timeout(Duration::ZERO), Some(Response::Timeout));
    }

    #[test]
    fn wait_timeout_returns_none_while_pending() {
        let (handle, completer) = oneshot();
        assert_eq!(handle.wait_timeout(Duration::from_millis(5)), None);
        completer.complete(Response::Cancelled);
        assert_eq!(
            handle.wait_timeout(Duration::from_secs(5)),
            Some(Response::Cancelled)
        );
    }

    #[test]
    fn dropping_an_unresolved_completer_cancels() {
        let (handle, completer) = oneshot();
        drop(completer);
        assert_eq!(handle.wait(), Response::Cancelled);
    }

    #[test]
    fn drop_after_complete_keeps_the_response() {
        let (handle, completer) = oneshot();
        completer.complete(Response::Timeout); // consumes + drops
        assert_eq!(handle.wait(), Response::Timeout);
    }
}
