//! The synthesis service front door.

use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qsp_core::{
    BatchSynthesizer, CacheEntry, CachePolicy, DedupPolicy, EntryOrigin, KeyCoverage, KeyedClass,
    Provenance, StageTimings, SynthesisReport, SynthesisRequest, TenantId,
};
use qsp_obs::{Histogram, ObsSnapshot, RequestTrace, SpanKind};
use qsp_state::{QuantumState, SparseState};

use crate::config::{SchedulerConfig, ServiceConfig};
use crate::handle::Response;
use crate::inflight::{Attach, InFlightTable, Waiter};
use crate::queue::{QueuedRequest, RejectReason, SubmissionQueue, Submit};
use crate::stats::{Counters, ServiceStats, TenantStats};
use crate::tenant::{TenantPolicy, TokenBucketAdmitter};

/// How [`SynthesisService::shutdown`] disposes of queued work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shutdown {
    /// Stop accepting, let the workers finish everything already queued,
    /// then exit. Every accepted request resolves with its real outcome.
    Drain,
    /// Stop accepting and fail queued requests with
    /// [`Response::Cancelled`]; workers exit after the batch they are
    /// currently processing (in-flight solves still complete normally).
    Abort,
}

/// The long-running request/response synthesis service.
///
/// See the [crate docs](crate) for the architecture. The service is shared
/// by reference: `submit` takes `&self` from any thread, and the worker pool
/// lives until [`SynthesisService::shutdown`] (or drop, which aborts).
#[derive(Debug)]
pub struct SynthesisService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

#[derive(Debug)]
struct Inner {
    engine: BatchSynthesizer,
    queue: SubmissionQueue,
    inflight: InFlightTable,
    /// Cached `serve.*` registry handles (the registry itself lives in the
    /// engine's [`qsp_obs::ObsHub`]).
    counters: Counters,
    queue_wait: Arc<Histogram>,
    service_time: Arc<Histogram>,
    end_to_end: Arc<Histogram>,
    scheduler: SchedulerConfig,
    /// The tenant directory (name → id, slot layout, DRR weights).
    policy: TenantPolicy,
    /// Per-tenant token buckets, consulted before the queue.
    admitter: TokenBucketAdmitter,
}

impl SynthesisService {
    /// Starts a service (and its worker pool) with the given configuration.
    pub fn start(config: ServiceConfig) -> Self {
        let engine = BatchSynthesizer::with_options(config.workflow, config.batch);
        Self::with_engine_and_tenants(
            engine,
            config.queue_capacity,
            config.scheduler,
            config.tenants,
        )
    }

    /// Starts a service on an existing batch engine — sharing its synthesis
    /// cache (e.g. one warm-started from a snapshot, or one also serving
    /// offline `synthesize_batch` traffic) and its observability hub. Uses
    /// the default (single-tenant, unthrottled) [`TenantPolicy`].
    pub fn with_engine(
        engine: BatchSynthesizer,
        queue_capacity: usize,
        scheduler: SchedulerConfig,
    ) -> Self {
        Self::with_engine_and_tenants(engine, queue_capacity, scheduler, TenantPolicy::default())
    }

    /// [`SynthesisService::with_engine`] plus an explicit multi-tenant
    /// admission and weighted-fair drain policy.
    pub fn with_engine_and_tenants(
        engine: BatchSynthesizer,
        queue_capacity: usize,
        scheduler: SchedulerConfig,
        tenants: TenantPolicy,
    ) -> Self {
        let metrics = engine.obs().metrics();
        let counters = Counters::new(metrics, &tenants);
        let admitter = TokenBucketAdmitter::new(&tenants, metrics);
        let queue_wait = metrics.histogram("serve.queue_wait", &[]);
        let service_time = metrics.histogram("serve.service_time", &[]);
        let end_to_end = metrics.histogram("serve.end_to_end", &[]);
        let inner = Arc::new(Inner {
            engine,
            queue: SubmissionQueue::new(queue_capacity, tenants.slot_weights()),
            inflight: InFlightTable::default(),
            counters,
            queue_wait,
            service_time,
            end_to_end,
            scheduler,
            policy: tenants,
            admitter,
        });
        let workers = (0..scheduler.resolved_workers())
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qsp-serve-{i}"))
                    .spawn(move || inner.run_worker())
                    .expect("spawn service worker")
            })
            .collect();
        SynthesisService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Submits a typed [`SynthesisRequest`] for synthesis. Never blocks: the
    /// request is either queued (wait on the returned handle) or rejected
    /// outright ([`Submit::Rejected`] with a [`RejectReason`] distinguishing
    /// admission throttling from backpressure from shutdown).
    ///
    /// The request's tenant
    /// ([`RequestOptions::tenant`](qsp_core::RequestOptions)) picks its
    /// admission token bucket, its weighted-fair sub-queue and its
    /// `serve.tenant.*` accounting slice; no tenant (or an unknown id) bills
    /// to the built-in default tenant.
    ///
    /// The request's [`RequestOptions`](qsp_core::RequestOptions) are
    /// honoured end to end: a deadline that expires while still queued
    /// completes with [`Response::Timeout`] and never reaches the solver;
    /// within a drain, requests are served earliest-deadline-first with
    /// priority breaking ties; solver overrides resolve against the
    /// service's base configuration and fork the request into its own
    /// fingerprinted dedup/cache class; the [`CachePolicy`] decides cache
    /// probing, in-flight attaching and publishing.
    ///
    /// Every accepted request gets a [`qsp_obs::TraceId`], and its completed
    /// [`SynthesisReport`] carries the full [`RequestTrace`] span tree
    /// (queue wait → validate → key → cache probe → solve → reconstruct,
    /// summing exactly to the end-to-end latency).
    pub fn submit(&self, request: SynthesisRequest<SparseState>) -> Submit {
        let SynthesisRequest {
            target, options, ..
        } = request;
        let slot = self.inner.policy.slot_of(options.tenant);
        let tenant = &self.inner.counters.tenants[slot];
        // Per-tenant `submitted` counts attempts (the conservation identity
        // includes throttled/rejected); the global one counts acceptances.
        tenant.submitted.inc();
        if !self.inner.admitter.try_admit(slot) {
            self.inner.counters.throttled.inc();
            tenant.throttled.inc();
            return Submit::Rejected {
                reason: RejectReason::Throttled,
            };
        }
        let submit = self.inner.queue.push(target, options, slot);
        match &submit {
            Submit::Accepted(_) => {
                self.inner.counters.submitted.inc();
                self.inner.counters.queue_depth.add(1);
                tenant.queue_depth.add(1);
            }
            Submit::Rejected { .. } => {
                self.inner.counters.rejected.inc();
                tenant.rejected.inc();
            }
        }
        submit
    }

    /// Submits a typed request over any [`QuantumState`] backend (converted
    /// to the solver's sparse form up front). An unconvertible target is
    /// accepted with an already-failed handle — it is a permanent
    /// per-request error, not backpressure or shutdown, so it must not look
    /// like either rejection.
    pub fn submit_request<S: QuantumState>(&self, request: &SynthesisRequest<S>) -> Submit {
        match request.target.as_sparse() {
            Ok(sparse) => self
                .submit(SynthesisRequest::new(sparse.into_owned()).with_options(request.options)),
            Err(error) => {
                self.inner.counters.submitted.inc();
                self.inner.counters.failed.inc();
                let tenant_slot = self.inner.policy.slot_of(request.options.tenant);
                let tenant = &self.inner.counters.tenants[tenant_slot];
                tenant.submitted.inc();
                tenant.failed.inc();
                let (handle, completer) = crate::handle::oneshot();
                completer.complete(Response::Failed(qsp_core::SynthesisError::State(error)));
                Submit::Accepted(handle)
            }
        }
    }

    /// The pre-request-API submission shape: a bare target plus an optional
    /// deadline.
    #[deprecated(
        since = "0.3.0",
        note = "build a `SynthesisRequest` (optionally `.with_deadline(..)`) and \
                use `submit` or `submit_request`"
    )]
    pub fn submit_state<S: QuantumState>(&self, target: &S, deadline: Option<Instant>) -> Submit {
        match target.as_sparse() {
            Ok(sparse) => {
                let mut request = SynthesisRequest::new(sparse.into_owned());
                if let Some(deadline) = deadline {
                    request = request.with_deadline(deadline);
                }
                self.submit(request)
            }
            Err(error) => {
                self.inner.counters.submitted.inc();
                self.inner.counters.failed.inc();
                let tenant = &self.inner.counters.tenants[self.inner.policy.default_slot()];
                tenant.submitted.inc();
                tenant.failed.inc();
                let (handle, completer) = crate::handle::oneshot();
                completer.complete(Response::Failed(qsp_core::SynthesisError::State(error)));
                Submit::Accepted(handle)
            }
        }
    }

    /// The underlying batch engine (shared synthesis cache, dedup policy,
    /// observability hub).
    pub fn engine(&self) -> &BatchSynthesizer {
        &self.inner.engine
    }

    /// A point-in-time snapshot of the service counters and latency
    /// histograms — the typed `serve.*` slice of the engine's metrics
    /// registry.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        let depths = self.inner.queue.depths();
        let tenants = c
            .tenants
            .iter()
            .enumerate()
            .map(|(slot, t)| TenantStats {
                name: t.name.clone(),
                submitted: t.submitted.get(),
                throttled: t.throttled.get(),
                rejected: t.rejected.get(),
                completed: t.completed.get(),
                expired: t.expired.get(),
                failed: t.failed.get(),
                cancelled: t.cancelled.get(),
                queue_depth: depths.get(slot).copied().unwrap_or(0),
                queue_wait: t.queue_wait.snapshot(),
            })
            .collect();
        ServiceStats {
            submitted: c.submitted.get(),
            completed: c.completed.get(),
            failed: c.failed.get(),
            rejected: c.rejected.get(),
            throttled: c.throttled.get(),
            expired: c.expired.get(),
            deduped: c.deduped.get(),
            cache_hits: c.cache_hits.get(),
            solver_runs: c.solver_runs.get(),
            cancelled: c.cancelled.get(),
            keys_exhaustive: c.keys_exhaustive.get(),
            keys_orbit_pruned: c.keys_orbit_pruned.get(),
            keys_greedy: c.keys_greedy.get(),
            keys_sig_fast_path: c.keys_sig_fast_path.get(),
            template_hits: c.template_hits.get(),
            queue_high_water: self.inner.queue.high_water(),
            queue_depth: self.inner.queue.depth(),
            in_flight_classes: self.inner.inflight.len(),
            queue_wait: self.inner.queue_wait.snapshot(),
            service_time: self.inner.service_time.snapshot(),
            end_to_end: self.inner.end_to_end.snapshot(),
            tenants,
        }
    }

    /// Resolves a tenant name against the service's [`TenantPolicy`]. The
    /// wire handshake uses this to map the client-supplied tenant string to
    /// a [`TenantId`]; unknown names get `None` and bill to the default
    /// tenant.
    pub fn resolve_tenant(&self, name: &str) -> Option<TenantId> {
        self.inner.policy.resolve(name)
    }

    /// The service's tenant policy (directory, weights, rates).
    pub fn tenant_policy(&self) -> &TenantPolicy {
        &self.inner.policy
    }

    /// A full observability snapshot of the engine's hub: every registry
    /// metric (`serve.*`, `batch.*`, `cache.*`), the sampled trace-ring
    /// spans and the solver flight records, serializable through
    /// [`ObsSnapshot::to_json`].
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        self.inner.engine.obs().snapshot()
    }

    /// Stops the service deterministically and joins the worker pool:
    /// [`Shutdown::Drain`] finishes all queued work first, [`Shutdown::Abort`]
    /// fails queued requests with [`Response::Cancelled`] (requests already
    /// being solved still complete). Idempotent; returns the final stats.
    pub fn shutdown(&self, mode: Shutdown) -> ServiceStats {
        let leftover = self.inner.queue.close(mode == Shutdown::Abort);
        for request in leftover {
            self.inner.counters.cancelled.inc();
            self.inner.counters.queue_depth.sub(1);
            let tenant = &self.inner.counters.tenants[request.slot];
            tenant.cancelled.inc();
            tenant.queue_depth.sub(1);
            request.completer.complete(Response::Cancelled);
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker pool poisoned"));
        for worker in workers {
            // A panicked worker already resolved its requests (completers
            // cancel on unwind); swallowing the panic here keeps shutdown —
            // and Drop during another panic's unwind — from aborting.
            if worker.join().is_err() {
                eprintln!("qsp-serve: worker thread panicked; its requests were cancelled");
            }
        }
        self.stats()
    }
}

impl Drop for SynthesisService {
    fn drop(&mut self) {
        self.shutdown(Shutdown::Abort);
    }
}

impl Inner {
    fn run_worker(&self) {
        while let Some(batch) = self
            .queue
            .pop_batch(self.scheduler.max_batch, self.scheduler.max_wait)
        {
            for request in batch {
                self.process(request);
            }
        }
    }

    /// Serves one drained request: deadline check, option resolution and
    /// fingerprinted canonical keying, then cache / in-flight attach / fresh
    /// solve per the request's [`CachePolicy`]. Each stage boundary is
    /// timestamped into the request's span tree.
    fn process(&self, request: QueuedRequest) {
        let QueuedRequest {
            trace,
            slot,
            target,
            options,
            enqueued,
            completer,
            ..
        } = request;
        let drained = Instant::now();
        let tenant = &self.counters.tenants[slot];
        self.counters.queue_depth.sub(1);
        tenant.queue_depth.sub(1);
        self.queue_wait.record(drained - enqueued);
        tenant.queue_wait.record(drained - enqueued);

        // Deadline-aware: an expired request is answered without spending
        // any solver time on it.
        if options.deadline.is_some_and(|d| drained >= d) {
            self.counters.expired.inc();
            tenant.expired.inc();
            self.end_to_end.record(drained - enqueued);
            completer.complete(Response::Timeout);
            return;
        }

        // The key folds in the request's cost-relevant options fingerprint,
        // so requests with different effective solver configurations can
        // never share a cache entry or an in-flight solve.
        let resolved = self.engine.resolve_options(&options);
        let validated = Instant::now();
        let KeyedClass {
            key,
            transform,
            coverage,
            ..
        } = match self.engine.canonical_class_with(&target, &resolved) {
            Ok(keyed) => keyed,
            Err(error) => {
                self.counters.failed.inc();
                tenant.failed.inc();
                let now = Instant::now();
                self.service_time.record(now - drained);
                self.end_to_end.record(now - enqueued);
                completer.complete(Response::Failed(error));
                return;
            }
        };
        let keyed = Instant::now();
        match coverage {
            KeyCoverage::Exhaustive => self.counters.keys_exhaustive.inc(),
            KeyCoverage::OrbitPruned => self.counters.keys_orbit_pruned.inc(),
            KeyCoverage::Greedy => self.counters.keys_greedy.inc(),
            KeyCoverage::SignatureOnly => self.counters.keys_sig_fast_path.inc(),
        }
        let waiter = Waiter {
            trace,
            slot,
            transform,
            resolved,
            keying: keyed - validated,
            completer,
            enqueued,
            drained,
            validated,
            keyed,
            probed: keyed,
        };

        // With dedup off — or a per-request cache bypass — the request is
        // solved independently: no cache probe, no in-flight table (its
        // cache-probe span is empty).
        if self.engine.options().dedup == DedupPolicy::Off || resolved.cache == CachePolicy::Bypass
        {
            let solve_start = Instant::now();
            let entry = self
                .engine
                .solve_class_with(&key, &waiter.transform, &target, &resolved);
            let solving = solve_start.elapsed();
            let provenance = self.owner_provenance(&entry, &waiter);
            self.finish(&entry, waiter, provenance, solving);
            return;
        }

        match self
            .inflight
            .attach_or_own(&key, || self.engine.lookup_class(&key), waiter)
        {
            Attach::Attached => self.counters.deduped.inc(),
            Attach::Cached(entry, waiter) => {
                self.counters.cache_hits.inc();
                let witness = waiter.transform.clone();
                self.finish(
                    &entry,
                    waiter,
                    Provenance::CacheHit { witness },
                    Duration::ZERO,
                );
            }
            Attach::Owner(waiter) => {
                // The guard retires the class even if the solve panics, so
                // attached waiters can never hang on a poisoned entry.
                let owned = self.inflight.guard(&key);
                // Publish to the cache (inside solve_class_with, gated on
                // the owner's CachePolicy) *before* retiring the in-flight
                // entry — the ordering the no-duplicate-solve guarantee
                // rests on. A `ReadOnly` owner skips the publish, so a
                // joiner landing after retirement re-solves instead of
                // hitting the cache: redundant work, never a wrong answer.
                let solve_start = Instant::now();
                let entry = self.engine.solve_class_with(
                    &key,
                    &waiter.transform,
                    &target,
                    &waiter.resolved,
                );
                let solving = solve_start.elapsed();
                let attached = owned.retire();
                let provenance = self.owner_provenance(&entry, &waiter);
                self.finish(&entry, waiter, provenance, solving);
                for waiter in attached {
                    let witness = waiter.transform.clone();
                    self.finish(
                        &entry,
                        waiter,
                        Provenance::DedupAttach { witness },
                        Duration::ZERO,
                    );
                }
            }
        }
    }

    /// The provenance of a class owner's freshly produced entry, with the
    /// matching counter bump: a template-instantiated entry counts as a
    /// template hit (no A* ran), anything else as a solver run.
    fn owner_provenance(&self, entry: &CacheEntry, waiter: &Waiter) -> Provenance {
        match entry.origin() {
            EntryOrigin::Template => {
                self.counters.template_hits.inc();
                Provenance::TemplateInstantiated {
                    witness: waiter.transform.clone(),
                }
            }
            EntryOrigin::Fresh => {
                self.counters.solver_runs.inc();
                Provenance::Solved
            }
        }
    }

    /// Completes one request from a solved class entry, reconstructing the
    /// circuit through the request's own witness transform (bit-identical
    /// CNOT cost to a direct solve) and assembling its provenance-rich
    /// report. `solving` is the solver time this request itself consumed
    /// (zero for cache hits and dedup attaches).
    fn finish(
        &self,
        entry: &CacheEntry,
        waiter: Waiter,
        provenance: Provenance,
        solving: Duration,
    ) {
        let reconstruct_start = Instant::now();
        let tenant = &self.counters.tenants[waiter.slot];
        let response = match BatchSynthesizer::reconstruct_for(entry, &waiter.transform) {
            Ok(circuit) => {
                self.counters.completed.inc();
                tenant.completed.inc();
                let now = Instant::now();
                let timings = StageTimings::new(
                    waiter.keying,
                    solving,
                    now - reconstruct_start,
                    now - waiter.enqueued,
                );
                // The span tree: six contiguous stages relative to
                // submission, summing *exactly* to the report's end-to-end
                // latency. For an attached waiter the solve span is the time
                // it spent parked on its owner's solve.
                let at = |instant: Instant| instant - waiter.enqueued;
                let mut trace = RequestTrace::new(waiter.trace);
                trace.push(
                    SpanKind::QueueWait,
                    Duration::ZERO,
                    waiter.drained - waiter.enqueued,
                );
                trace.push(
                    SpanKind::Validate,
                    at(waiter.drained),
                    waiter.validated - waiter.drained,
                );
                trace.push(
                    SpanKind::Key,
                    at(waiter.validated),
                    waiter.keyed - waiter.validated,
                );
                trace.push(
                    SpanKind::CacheProbe,
                    at(waiter.keyed),
                    waiter.probed - waiter.keyed,
                );
                trace.push(
                    SpanKind::Solve,
                    at(waiter.probed),
                    reconstruct_start - waiter.probed,
                );
                trace.push(
                    SpanKind::Reconstruct,
                    at(reconstruct_start),
                    now - reconstruct_start,
                );
                self.engine.obs().tracer().record_trace(&trace);
                Response::Completed(
                    SynthesisReport::new(circuit, provenance, timings, waiter.resolved)
                        .with_trace(trace),
                )
            }
            Err(error) => {
                self.counters.failed.inc();
                tenant.failed.inc();
                Response::Failed(error)
            }
        };
        let now = Instant::now();
        self.service_time.record(now - waiter.drained);
        self.end_to_end.record(now - waiter.enqueued);
        waiter.completer.complete(response);
    }
}
