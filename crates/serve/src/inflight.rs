//! The per-class in-flight dedup table.
//!
//! When a worker picks up a request whose canonical class is neither cached
//! nor being solved, it becomes the class *owner* and solves it; a worker
//! that picks up another member of the same class while the solve is running
//! *attaches* its request to the owner instead of re-entering the queue or
//! solving again. The owner completes every attached waiter (reconstructing
//! each circuit through the waiter's own witness transform, which preserves
//! the CNOT cost bit-for-bit).
//!
//! The no-duplicate-solve guarantee is a lock-ordering protocol between this
//! table and the synthesis cache:
//!
//! * joiners probe the cache *while holding the table lock* (the cache's
//!   shard locks never take the table lock, so this cannot deadlock);
//! * the owner publishes to the cache **before** removing its table entry.
//!
//! So a joiner either sees the table entry (attaches) or, if the entry is
//! already gone, is guaranteed to find the solved class in the cache — a
//! second solve of an in-flight class is impossible (cache eviction can
//! still force a re-solve later, which is benign).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qsp_core::{CacheEntry, ClassKey, ResolvedConfig, StateTransform};
use qsp_obs::TraceId;

use crate::handle::Completer;

/// A request parked on an in-flight solve (or being finished by its owner).
///
/// The table key carries the request's options fingerprint, so every waiter
/// parked on a class shares the same effective cost-relevant configuration
/// as its owner — attaching is always dedup-sound.
#[derive(Debug)]
pub(crate) struct Waiter {
    /// The request's trace id (assigned at submission).
    pub trace: TraceId,
    /// The tenant accounting slot the request's completion is billed to.
    pub slot: usize,
    /// The request's own witness transform onto the canonical fingerprint.
    pub transform: StateTransform,
    /// The request's effective configuration (reported back in its
    /// [`SynthesisReport`](qsp_core::SynthesisReport)).
    pub resolved: ResolvedConfig,
    /// Time the worker spent canonically keying this request.
    pub keying: Duration,
    pub completer: Completer,
    pub enqueued: Instant,
    /// When the worker drained this request (per-stage latency accounting).
    pub drained: Instant,
    /// When the deadline check and option resolution finished.
    pub validated: Instant,
    /// When canonical keying finished.
    pub keyed: Instant,
    /// When the cache-probe/attach decision was made. Initialized to `keyed`
    /// at construction; [`InFlightTable::attach_or_own`] re-stamps it so the
    /// span covers the actual probe under the table lock.
    pub probed: Instant,
}

/// What became of an attach attempt.
#[derive(Debug)]
pub(crate) enum Attach {
    /// No solve in flight and no cached class: the caller owns the solve.
    /// The waiter is handed back so the owner can complete itself too.
    Owner(Waiter),
    /// A solve is in flight; the waiter is parked on it.
    Attached,
    /// The class was already solved; the caller serves it immediately.
    Cached(Arc<CacheEntry>, Waiter),
}

#[derive(Debug, Default)]
pub(crate) struct InFlightTable {
    classes: Mutex<HashMap<ClassKey, Vec<Waiter>>>,
}

impl InFlightTable {
    /// Routes one request: attach to an in-flight solve, serve from cache,
    /// or become the class owner. `cache_probe` runs under the table lock —
    /// see the module docs for why that ordering is load-bearing.
    pub(crate) fn attach_or_own(
        &self,
        key: &ClassKey,
        cache_probe: impl FnOnce() -> Option<Arc<CacheEntry>>,
        mut waiter: Waiter,
    ) -> Attach {
        let mut classes = self.classes.lock().expect("in-flight table poisoned");
        if let Some(waiters) = classes.get_mut(key) {
            waiter.probed = Instant::now();
            waiters.push(waiter);
            return Attach::Attached;
        }
        let probed = cache_probe();
        waiter.probed = Instant::now();
        if let Some(entry) = probed {
            return Attach::Cached(entry, waiter);
        }
        classes.insert(key.clone(), Vec::new());
        Attach::Owner(waiter)
    }

    /// Retires an in-flight class, returning the waiters that attached while
    /// it was being solved. The owner must have published the solved entry
    /// to the cache *before* calling this.
    pub(crate) fn take_waiters(&self, key: &ClassKey) -> Vec<Waiter> {
        self.classes
            .lock()
            .expect("in-flight table poisoned")
            .remove(key)
            .unwrap_or_default()
    }

    /// An unwind guard for a class this caller owns: if the owner's solve
    /// panics before [`OwnedClass::retire`], the guard's drop retires the
    /// table entry anyway, so the attached waiters resolve (`Cancelled`, via
    /// their completers' drop) instead of hanging on a poisoned class, and
    /// later requests for the class can solve it afresh.
    pub(crate) fn guard<'a>(&'a self, key: &'a ClassKey) -> OwnedClass<'a> {
        OwnedClass {
            table: self,
            key,
            armed: true,
        }
    }

    /// Number of classes currently being solved.
    pub(crate) fn len(&self) -> usize {
        self.classes.lock().expect("in-flight table poisoned").len()
    }
}

/// See [`InFlightTable::guard`].
#[derive(Debug)]
pub(crate) struct OwnedClass<'a> {
    table: &'a InFlightTable,
    key: &'a ClassKey,
    armed: bool,
}

impl OwnedClass<'_> {
    /// Normal completion: retires the class entry and hands the attached
    /// waiters to the owner for completion.
    pub(crate) fn retire(mut self) -> Vec<Waiter> {
        self.armed = false;
        self.table.take_waiters(self.key)
    }
}

impl Drop for OwnedClass<'_> {
    fn drop(&mut self) {
        if self.armed {
            drop(self.table.take_waiters(self.key));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::oneshot;
    use qsp_core::{BatchSynthesizer, DedupPolicy};
    use qsp_state::generators;

    fn waiter(transform: StateTransform) -> Waiter {
        let (_, completer) = oneshot();
        let now = Instant::now();
        Waiter {
            trace: TraceId::next(),
            slot: 0,
            transform,
            resolved: ResolvedConfig::default(),
            keying: Duration::ZERO,
            completer,
            enqueued: now,
            drained: now,
            validated: now,
            keyed: now,
            probed: now,
        }
    }

    #[test]
    fn first_request_owns_later_requests_attach() {
        let engine = BatchSynthesizer::new();
        assert_eq!(engine.options().dedup, DedupPolicy::Canonical);
        let target = generators::ghz(4).unwrap();
        let qsp_core::KeyedClass { key, transform, .. } = engine.canonical_class(&target).unwrap();
        let table = InFlightTable::default();

        let first = table.attach_or_own(
            &key,
            || engine.lookup_class(&key),
            waiter(transform.clone()),
        );
        let Attach::Owner(owner) = first else {
            panic!("first request must own the solve");
        };
        assert_eq!(table.len(), 1);
        for _ in 0..3 {
            let joined = table.attach_or_own(
                &key,
                || engine.lookup_class(&key),
                waiter(transform.clone()),
            );
            assert!(matches!(joined, Attach::Attached));
        }

        // The owner publishes, then retires the entry and its waiters.
        let entry = engine.solve_class(&key, &owner.transform, &target);
        let waiters = table.take_waiters(&key);
        assert_eq!(waiters.len(), 3);
        assert_eq!(table.len(), 0);

        // A late arrival now resolves through the cache, not a new solve.
        let late = table.attach_or_own(&key, || engine.lookup_class(&key), waiter(transform));
        let Attach::Cached(cached, _) = late else {
            panic!("late request must hit the cache");
        };
        assert_eq!(cached.cnot_cost(), entry.cnot_cost());
    }

    #[test]
    fn dropping_an_armed_guard_unpoisons_the_class_and_cancels_waiters() {
        use crate::handle::Response;

        let engine = BatchSynthesizer::new();
        let target = generators::ghz(3).unwrap();
        let qsp_core::KeyedClass { key, transform, .. } = engine.canonical_class(&target).unwrap();
        let table = InFlightTable::default();

        let Attach::Owner(_owner) = table.attach_or_own(
            &key,
            || engine.lookup_class(&key),
            waiter(transform.clone()),
        ) else {
            panic!("first request must own the solve");
        };
        let (attached_handle, completer) = oneshot();
        let now = Instant::now();
        assert!(matches!(
            table.attach_or_own(
                &key,
                || engine.lookup_class(&key),
                Waiter {
                    trace: TraceId::next(),
                    slot: 0,
                    transform: transform.clone(),
                    resolved: ResolvedConfig::default(),
                    keying: Duration::ZERO,
                    completer,
                    enqueued: now,
                    drained: now,
                    validated: now,
                    keyed: now,
                    probed: now,
                },
            ),
            Attach::Attached
        ));

        // The owner's solve "panics": the guard drops without retire().
        drop(table.guard(&key));

        // The attached waiter resolved instead of hanging, and the class is
        // free for the next request to own.
        assert_eq!(attached_handle.try_response(), Some(Response::Cancelled));
        assert_eq!(table.len(), 0);
        assert!(matches!(
            table.attach_or_own(&key, || engine.lookup_class(&key), waiter(transform)),
            Attach::Owner(_)
        ));
    }
}
