//! The bounded submission queue and its micro-batch drain.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use qsp_core::RequestOptions;
use qsp_obs::TraceId;
use qsp_state::SparseState;

use crate::handle::{oneshot, Completer, RequestHandle};

/// The outcome of a submission attempt.
#[derive(Debug)]
pub enum Submit {
    /// The request was queued; the handle resolves when it finishes.
    Accepted(RequestHandle),
    /// The request was not queued. `queue_full: true` is backpressure (the
    /// bounded queue is at capacity); `false` means the service is shutting
    /// down.
    Rejected {
        /// Whether the rejection was capacity backpressure (as opposed to
        /// shutdown).
        queue_full: bool,
    },
}

impl Submit {
    /// Whether the request was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Submit::Accepted(_))
    }

    /// The handle, if the request was accepted.
    pub fn handle(self) -> Option<RequestHandle> {
        match self {
            Submit::Accepted(handle) => Some(handle),
            Submit::Rejected { .. } => None,
        }
    }
}

/// One queued request, waiting for a worker drain.
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    /// Submission order, the deterministic tiebreak of the EDF sort.
    pub seq: u64,
    /// The request's trace id (head-sampling key; rides on the report).
    pub trace: TraceId,
    pub target: SparseState,
    /// The request's full options block (deadline and priority drive the
    /// drain order; the solver overrides and cache policy are consumed by
    /// the worker).
    pub options: RequestOptions,
    pub enqueued: Instant,
    pub completer: Completer,
}

/// Service lifecycle, driven by shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifecycle {
    /// Accepting and processing.
    Running,
    /// No longer accepting; workers drain what is queued, then exit.
    Draining,
    /// No longer accepting; queued requests were cancelled, workers exit
    /// after their current batch.
    Aborted,
}

#[derive(Debug)]
struct QueueState {
    items: VecDeque<QueuedRequest>,
    lifecycle: Lifecycle,
}

/// A bounded MPSC queue with condvar-based micro-batch draining.
#[derive(Debug)]
pub(crate) struct SubmissionQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    high_water: AtomicUsize,
    next_seq: AtomicU64,
}

impl SubmissionQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        SubmissionQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                lifecycle: Lifecycle::Running,
            }),
            not_empty: Condvar::new(),
            high_water: AtomicUsize::new(0),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Attempts to enqueue a request; never blocks.
    pub(crate) fn push(&self, target: SparseState, options: RequestOptions) -> Submit {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.lifecycle != Lifecycle::Running {
            return Submit::Rejected { queue_full: false };
        }
        if state.items.len() >= self.capacity {
            return Submit::Rejected { queue_full: true };
        }
        let (handle, completer) = oneshot();
        state.items.push_back(QueuedRequest {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            trace: TraceId::next(),
            target,
            options,
            enqueued: Instant::now(),
            completer,
        });
        self.high_water
            .fetch_max(state.items.len(), Ordering::Relaxed);
        drop(state);
        self.not_empty.notify_one();
        Submit::Accepted(handle)
    }

    /// Blocks until at least one request is available (or the service stops),
    /// then drains a micro-batch: the drain waits up to `max_wait` for the
    /// batch to fill to `max_batch`, takes at most `max_batch` requests, and
    /// returns them in earliest-deadline-first order. `None` tells the
    /// calling worker to exit.
    pub(crate) fn pop_batch(
        &self,
        max_batch: usize,
        max_wait: Duration,
    ) -> Option<Vec<QueuedRequest>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            // Wait for work (or an exit signal).
            loop {
                match state.lifecycle {
                    Lifecycle::Aborted => return None,
                    Lifecycle::Draining if state.items.is_empty() => return None,
                    _ if !state.items.is_empty() => break,
                    _ => state = self.not_empty.wait(state).expect("queue poisoned"),
                }
            }
            // Micro-batch fill: only worth waiting while new submissions can
            // still arrive.
            if state.lifecycle == Lifecycle::Running
                && state.items.len() < max_batch
                && max_wait > Duration::ZERO
            {
                let fill_deadline = Instant::now() + max_wait;
                while state.lifecycle == Lifecycle::Running && state.items.len() < max_batch {
                    let now = Instant::now();
                    if now >= fill_deadline {
                        break;
                    }
                    let (guard, wait) = self
                        .not_empty
                        .wait_timeout(state, fill_deadline - now)
                        .expect("queue poisoned");
                    state = guard;
                    if wait.timed_out() {
                        break;
                    }
                }
            }
            if state.lifecycle == Lifecycle::Aborted {
                return None; // the aborter cancels whatever is queued
            }
            let take = state.items.len().min(max_batch);
            let mut batch: Vec<QueuedRequest> = state.items.drain(..take).collect();
            if batch.is_empty() {
                continue; // another worker drained first; go back to waiting
            }
            edf_sort(&mut batch);
            return Some(batch);
        }
    }

    /// Stops the queue. With `abort`, queued requests are handed back to the
    /// caller (to be cancelled) instead of drained by workers. Idempotent;
    /// an abort overrides a drain.
    pub(crate) fn close(&self, abort: bool) -> Vec<QueuedRequest> {
        let mut state = self.state.lock().expect("queue poisoned");
        let leftover = if abort {
            state.lifecycle = Lifecycle::Aborted;
            state.items.drain(..).collect()
        } else {
            if state.lifecycle == Lifecycle::Running {
                state.lifecycle = Lifecycle::Draining;
            }
            Vec::new()
        };
        drop(state);
        self.not_empty.notify_all();
        leftover
    }

    /// Current queue depth.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// The deepest the queue has ever been.
    pub(crate) fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Sorts a drained batch earliest-deadline-first: deadlined requests before
/// deadline-free ones, higher request priority breaking deadline ties, and
/// submission order as the final deterministic tiebreak.
fn edf_sort(batch: &mut [QueuedRequest]) {
    let tiebreak = |a: &QueuedRequest, b: &QueuedRequest| {
        b.options
            .priority
            .cmp(&a.options.priority)
            .then(a.seq.cmp(&b.seq))
    };
    batch.sort_by(|a, b| match (a.options.deadline, b.options.deadline) {
        (Some(x), Some(y)) => x.cmp(&y).then_with(|| tiebreak(a, b)),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => tiebreak(a, b),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::generators;

    fn push_plain(queue: &SubmissionQueue) -> Submit {
        queue.push(generators::ghz(3).unwrap(), RequestOptions::default())
    }

    fn push_deadlined(queue: &SubmissionQueue, deadline: Option<Instant>) -> Submit {
        let mut options = RequestOptions::default();
        options.deadline = deadline;
        queue.push(generators::ghz(3).unwrap(), options)
    }

    fn queue_with(capacity: usize, targets: usize) -> (SubmissionQueue, Vec<RequestHandle>) {
        let queue = SubmissionQueue::new(capacity);
        let handles = (0..targets)
            .map(|_| push_plain(&queue).handle().expect("accepted"))
            .collect();
        (queue, handles)
    }

    #[test]
    fn capacity_is_enforced() {
        let (queue, _handles) = queue_with(2, 2);
        match push_plain(&queue) {
            Submit::Rejected { queue_full } => assert!(queue_full),
            Submit::Accepted(_) => panic!("expected backpressure"),
        }
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.high_water(), 2);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let queue = SubmissionQueue::new(0);
        assert!(!push_plain(&queue).is_accepted());
        assert_eq!(queue.high_water(), 0);
    }

    #[test]
    fn drain_takes_at_most_max_batch_in_fifo_order_without_deadlines() {
        let (queue, _handles) = queue_with(16, 5);
        let batch = queue.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(
            batch.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let rest = queue.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn drain_orders_earliest_deadline_first() {
        let queue = SubmissionQueue::new(16);
        let now = Instant::now();
        let deadlines = [
            Some(now + Duration::from_millis(30)),
            None,
            Some(now + Duration::from_millis(10)),
            Some(now + Duration::from_millis(10)),
            Some(now + Duration::from_millis(20)),
        ];
        for deadline in deadlines {
            assert!(push_deadlined(&queue, deadline).is_accepted());
        }
        let batch = queue.pop_batch(16, Duration::ZERO).unwrap();
        // Ties keep submission order; no-deadline requests go last.
        assert_eq!(
            batch.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4, 0, 1]
        );
    }

    #[test]
    fn priority_breaks_deadline_ties_and_orders_deadline_free_requests() {
        let queue = SubmissionQueue::new(16);
        let deadline = Instant::now() + Duration::from_millis(50);
        let submit = |deadline: Option<Instant>, priority: u8| {
            let mut options = RequestOptions::default().with_priority(priority);
            options.deadline = deadline;
            assert!(queue
                .push(generators::ghz(3).unwrap(), options)
                .is_accepted());
        };
        submit(None, 0); // seq 0
        submit(Some(deadline), 1); // seq 1
        submit(None, 9); // seq 2
        submit(Some(deadline), 5); // seq 3
        submit(None, 9); // seq 4
        let batch = queue.pop_batch(16, Duration::ZERO).unwrap();
        // Equal deadlines: higher priority first (3 before 1). Deadline-free
        // tail: priority desc, then submission order (2, 4 before 0).
        assert_eq!(
            batch.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 1, 2, 4, 0]
        );
    }

    #[test]
    fn micro_batch_fill_waits_for_late_arrivals() {
        let queue = std::sync::Arc::new(SubmissionQueue::new(16));
        assert!(push_plain(&queue).is_accepted());
        let producer = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                assert!(push_plain(&queue).is_accepted());
            })
        };
        // The drain waits up to 500ms for the batch to fill; the second
        // submission lands ~10ms in, well inside the window.
        let batch = queue.pop_batch(2, Duration::from_millis(500)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn close_draining_lets_workers_finish_the_backlog() {
        let (queue, _handles) = queue_with(16, 2);
        assert!(queue.close(false).is_empty());
        assert!(!push_plain(&queue).is_accepted());
        assert_eq!(queue.pop_batch(1, Duration::ZERO).unwrap().len(), 1);
        assert_eq!(queue.pop_batch(1, Duration::ZERO).unwrap().len(), 1);
        assert!(queue.pop_batch(1, Duration::ZERO).is_none());
    }

    #[test]
    fn close_abort_hands_back_the_backlog() {
        let (queue, _handles) = queue_with(16, 3);
        let leftover = queue.close(true);
        assert_eq!(leftover.len(), 3);
        assert!(queue.pop_batch(4, Duration::ZERO).is_none());
    }
}
