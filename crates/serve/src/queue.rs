//! The bounded submission queue: per-tenant sub-queues drained
//! deficit-round-robin, with EDF ordering inside each micro-batch.
//!
//! Fairness and deadlines compose in two stages. *Across* tenants, the
//! drain runs deficit round-robin (DRR) over the per-tenant sub-queues:
//! each scheduler pass tops a tenant's deficit up by its configured weight
//! and drains up to that many requests, so a tenant flooding the queue can
//! fill only its own sub-queue — other tenants' requests keep reaching the
//! workers at their weighted share. *Within* the drained micro-batch,
//! requests are then sorted earliest-deadline-first exactly as before, so
//! deadline semantics are unchanged for admitted work.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use qsp_core::RequestOptions;
use qsp_obs::TraceId;
use qsp_state::SparseState;

use crate::handle::{oneshot, Completer, RequestHandle};

/// Why a submission was not queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// Capacity backpressure: the bounded queue is full.
    QueueFull,
    /// Admission control: the tenant's token bucket is empty. The request
    /// never reached the queue; retry after the bucket refills.
    Throttled,
    /// The service is shutting down and no longer accepts work.
    Shutdown,
}

/// The outcome of a submission attempt.
#[derive(Debug)]
pub enum Submit {
    /// The request was queued; the handle resolves when it finishes.
    Accepted(RequestHandle),
    /// The request was not queued; `reason` says why.
    Rejected {
        /// Why the request was turned away.
        reason: RejectReason,
    },
}

impl Submit {
    /// Whether the request was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Submit::Accepted(_))
    }

    /// The handle, if the request was accepted.
    pub fn handle(self) -> Option<RequestHandle> {
        match self {
            Submit::Accepted(handle) => Some(handle),
            Submit::Rejected { .. } => None,
        }
    }
}

/// One queued request, waiting for a worker drain.
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    /// Submission order, the deterministic tiebreak of the EDF sort.
    pub seq: u64,
    /// The request's trace id (head-sampling key; rides on the report).
    pub trace: TraceId,
    /// The tenant accounting slot the request is billed to.
    pub slot: usize,
    pub target: SparseState,
    /// The request's full options block (deadline and priority drive the
    /// drain order; the solver overrides and cache policy are consumed by
    /// the worker).
    pub options: RequestOptions,
    pub enqueued: Instant,
    pub completer: Completer,
}

/// Service lifecycle, driven by shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifecycle {
    /// Accepting and processing.
    Running,
    /// No longer accepting; workers drain what is queued, then exit.
    Draining,
    /// No longer accepting; queued requests were cancelled, workers exit
    /// after their current batch.
    Aborted,
}

/// One tenant's sub-queue plus its DRR deficit counter.
#[derive(Debug, Default)]
struct TenantQueue {
    items: VecDeque<QueuedRequest>,
    /// Unspent drain credit. Topped up by the tenant's weight each DRR
    /// pass; reset to zero when the sub-queue empties (an idle tenant does
    /// not bank credit).
    deficit: u64,
}

#[derive(Debug)]
struct QueueState {
    slots: Vec<TenantQueue>,
    /// Round-robin order of the non-empty slots.
    active: VecDeque<usize>,
    /// Total queued requests across every slot (the capacity bound).
    len: usize,
    lifecycle: Lifecycle,
}

/// A bounded MPSC queue with condvar-based micro-batch draining and
/// weighted-fair (DRR) tenant ordering.
#[derive(Debug)]
pub(crate) struct SubmissionQueue {
    capacity: usize,
    /// DRR weight per tenant slot (parallel to `QueueState::slots`).
    weights: Vec<u32>,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    high_water: AtomicUsize,
    next_seq: AtomicU64,
}

impl SubmissionQueue {
    /// A queue with one sub-queue per entry of `weights` (each clamped to
    /// at least 1). `capacity` bounds the *total* depth across slots.
    pub(crate) fn new(capacity: usize, weights: Vec<u32>) -> Self {
        let weights: Vec<u32> = if weights.is_empty() {
            vec![1]
        } else {
            weights.into_iter().map(|w| w.max(1)).collect()
        };
        SubmissionQueue {
            capacity,
            state: Mutex::new(QueueState {
                slots: (0..weights.len()).map(|_| TenantQueue::default()).collect(),
                active: VecDeque::new(),
                len: 0,
                lifecycle: Lifecycle::Running,
            }),
            weights,
            not_empty: Condvar::new(),
            high_water: AtomicUsize::new(0),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Attempts to enqueue a request for tenant `slot`; never blocks.
    pub(crate) fn push(&self, target: SparseState, options: RequestOptions, slot: usize) -> Submit {
        let slot = slot.min(self.weights.len() - 1);
        let mut state = self.state.lock().expect("queue poisoned");
        if state.lifecycle != Lifecycle::Running {
            return Submit::Rejected {
                reason: RejectReason::Shutdown,
            };
        }
        if state.len >= self.capacity {
            return Submit::Rejected {
                reason: RejectReason::QueueFull,
            };
        }
        let (handle, completer) = oneshot();
        let request = QueuedRequest {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            trace: TraceId::next(),
            slot,
            target,
            options,
            enqueued: Instant::now(),
            completer,
        };
        if state.slots[slot].items.is_empty() {
            state.active.push_back(slot);
        }
        state.slots[slot].items.push_back(request);
        state.len += 1;
        self.high_water.fetch_max(state.len, Ordering::Relaxed);
        drop(state);
        self.not_empty.notify_one();
        Submit::Accepted(handle)
    }

    /// Blocks until at least one request is available (or the service stops),
    /// then drains a micro-batch: the drain waits up to `max_wait` for the
    /// batch to fill to `max_batch`, takes at most `max_batch` requests via
    /// deficit round-robin over the tenant sub-queues, and returns them in
    /// earliest-deadline-first order. `None` tells the calling worker to
    /// exit.
    pub(crate) fn pop_batch(
        &self,
        max_batch: usize,
        max_wait: Duration,
    ) -> Option<Vec<QueuedRequest>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            // Wait for work (or an exit signal).
            loop {
                match state.lifecycle {
                    Lifecycle::Aborted => return None,
                    Lifecycle::Draining if state.len == 0 => return None,
                    _ if state.len > 0 => break,
                    _ => state = self.not_empty.wait(state).expect("queue poisoned"),
                }
            }
            // Micro-batch fill: only worth waiting while new submissions can
            // still arrive.
            if state.lifecycle == Lifecycle::Running
                && state.len < max_batch
                && max_wait > Duration::ZERO
            {
                let fill_deadline = Instant::now() + max_wait;
                while state.lifecycle == Lifecycle::Running && state.len < max_batch {
                    let now = Instant::now();
                    if now >= fill_deadline {
                        break;
                    }
                    let (guard, wait) = self
                        .not_empty
                        .wait_timeout(state, fill_deadline - now)
                        .expect("queue poisoned");
                    state = guard;
                    if wait.timed_out() {
                        break;
                    }
                }
            }
            if state.lifecycle == Lifecycle::Aborted {
                return None; // the aborter cancels whatever is queued
            }
            let mut batch = self.drr_drain(&mut state, max_batch);
            if batch.is_empty() {
                continue; // another worker drained first; go back to waiting
            }
            edf_sort(&mut batch);
            return Some(batch);
        }
    }

    /// One DRR pass: cycle the active slots, topping each visited slot's
    /// deficit up by its weight and draining up to that many requests, until
    /// the batch fills or the queue empties.
    fn drr_drain(&self, state: &mut QueueState, max_batch: usize) -> Vec<QueuedRequest> {
        let mut batch = Vec::new();
        while batch.len() < max_batch {
            let Some(slot) = state.active.pop_front() else {
                break;
            };
            let queue = &mut state.slots[slot];
            queue.deficit = queue.deficit.saturating_add(u64::from(self.weights[slot]));
            while queue.deficit >= 1 && batch.len() < max_batch {
                let Some(request) = queue.items.pop_front() else {
                    break;
                };
                queue.deficit -= 1;
                state.len -= 1;
                batch.push(request);
            }
            if queue.items.is_empty() {
                // Idle tenants bank no credit.
                queue.deficit = 0;
            } else if batch.len() >= max_batch {
                // The batch filled mid-quantum: resume this slot first next
                // drain, its unspent deficit intact.
                state.active.push_front(slot);
            } else {
                state.active.push_back(slot);
            }
        }
        batch
    }

    /// Stops the queue. With `abort`, queued requests are handed back to the
    /// caller (to be cancelled) instead of drained by workers. Idempotent;
    /// an abort overrides a drain.
    pub(crate) fn close(&self, abort: bool) -> Vec<QueuedRequest> {
        let mut state = self.state.lock().expect("queue poisoned");
        let leftover = if abort {
            state.lifecycle = Lifecycle::Aborted;
            state.active.clear();
            state.len = 0;
            let mut all: Vec<QueuedRequest> = state
                .slots
                .iter_mut()
                .flat_map(|slot| slot.items.drain(..))
                .collect();
            all.sort_by_key(|r| r.seq);
            all
        } else {
            if state.lifecycle == Lifecycle::Running {
                state.lifecycle = Lifecycle::Draining;
            }
            Vec::new()
        };
        drop(state);
        self.not_empty.notify_all();
        leftover
    }

    /// Current total queue depth.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").len
    }

    /// Current per-slot queue depths.
    pub(crate) fn depths(&self) -> Vec<usize> {
        let state = self.state.lock().expect("queue poisoned");
        state.slots.iter().map(|slot| slot.items.len()).collect()
    }

    /// The deepest the queue has ever been (total across slots).
    pub(crate) fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Sorts a drained batch earliest-deadline-first: deadlined requests before
/// deadline-free ones, higher request priority breaking deadline ties, and
/// submission order as the final deterministic tiebreak.
fn edf_sort(batch: &mut [QueuedRequest]) {
    let tiebreak = |a: &QueuedRequest, b: &QueuedRequest| {
        b.options
            .priority
            .cmp(&a.options.priority)
            .then(a.seq.cmp(&b.seq))
    };
    batch.sort_by(|a, b| match (a.options.deadline, b.options.deadline) {
        (Some(x), Some(y)) => x.cmp(&y).then_with(|| tiebreak(a, b)),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => tiebreak(a, b),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsp_state::generators;

    fn single_tenant(capacity: usize) -> SubmissionQueue {
        SubmissionQueue::new(capacity, vec![1])
    }

    fn push_plain(queue: &SubmissionQueue) -> Submit {
        queue.push(generators::ghz(3).unwrap(), RequestOptions::default(), 0)
    }

    fn push_deadlined(queue: &SubmissionQueue, deadline: Option<Instant>) -> Submit {
        let mut options = RequestOptions::default();
        options.deadline = deadline;
        queue.push(generators::ghz(3).unwrap(), options, 0)
    }

    fn queue_with(capacity: usize, targets: usize) -> (SubmissionQueue, Vec<RequestHandle>) {
        let queue = single_tenant(capacity);
        let handles = (0..targets)
            .map(|_| push_plain(&queue).handle().expect("accepted"))
            .collect();
        (queue, handles)
    }

    #[test]
    fn capacity_is_enforced() {
        let (queue, _handles) = queue_with(2, 2);
        match push_plain(&queue) {
            Submit::Rejected { reason } => assert_eq!(reason, RejectReason::QueueFull),
            Submit::Accepted(_) => panic!("expected backpressure"),
        }
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.high_water(), 2);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let queue = single_tenant(0);
        assert!(!push_plain(&queue).is_accepted());
        assert_eq!(queue.high_water(), 0);
    }

    #[test]
    fn drain_takes_at_most_max_batch_in_fifo_order_without_deadlines() {
        let (queue, _handles) = queue_with(16, 5);
        let batch = queue.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(
            batch.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let rest = queue.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn drain_orders_earliest_deadline_first() {
        let queue = single_tenant(16);
        let now = Instant::now();
        let deadlines = [
            Some(now + Duration::from_millis(30)),
            None,
            Some(now + Duration::from_millis(10)),
            Some(now + Duration::from_millis(10)),
            Some(now + Duration::from_millis(20)),
        ];
        for deadline in deadlines {
            assert!(push_deadlined(&queue, deadline).is_accepted());
        }
        let batch = queue.pop_batch(16, Duration::ZERO).unwrap();
        // Ties keep submission order; no-deadline requests go last.
        assert_eq!(
            batch.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4, 0, 1]
        );
    }

    #[test]
    fn priority_breaks_deadline_ties_and_orders_deadline_free_requests() {
        let queue = single_tenant(16);
        let deadline = Instant::now() + Duration::from_millis(50);
        let submit = |deadline: Option<Instant>, priority: u8| {
            let mut options = RequestOptions::default().with_priority(priority);
            options.deadline = deadline;
            assert!(queue
                .push(generators::ghz(3).unwrap(), options, 0)
                .is_accepted());
        };
        submit(None, 0); // seq 0
        submit(Some(deadline), 1); // seq 1
        submit(None, 9); // seq 2
        submit(Some(deadline), 5); // seq 3
        submit(None, 9); // seq 4
        let batch = queue.pop_batch(16, Duration::ZERO).unwrap();
        // Equal deadlines: higher priority first (3 before 1). Deadline-free
        // tail: priority desc, then submission order (2, 4 before 0).
        assert_eq!(
            batch.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 1, 2, 4, 0]
        );
    }

    #[test]
    fn micro_batch_fill_waits_for_late_arrivals() {
        let queue = std::sync::Arc::new(single_tenant(16));
        assert!(push_plain(&queue).is_accepted());
        let producer = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                assert!(push_plain(&queue).is_accepted());
            })
        };
        // The drain waits up to 500ms for the batch to fill; the second
        // submission lands ~10ms in, well inside the window.
        let batch = queue.pop_batch(2, Duration::from_millis(500)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn close_draining_lets_workers_finish_the_backlog() {
        let (queue, _handles) = queue_with(16, 2);
        assert!(queue.close(false).is_empty());
        assert!(!push_plain(&queue).is_accepted());
        assert_eq!(queue.pop_batch(1, Duration::ZERO).unwrap().len(), 1);
        assert_eq!(queue.pop_batch(1, Duration::ZERO).unwrap().len(), 1);
        assert!(queue.pop_batch(1, Duration::ZERO).is_none());
    }

    #[test]
    fn close_abort_hands_back_the_backlog() {
        let (queue, _handles) = queue_with(16, 3);
        let leftover = queue.close(true);
        assert_eq!(leftover.len(), 3);
        assert!(queue.pop_batch(4, Duration::ZERO).is_none());
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn shutdown_rejection_is_typed() {
        let queue = single_tenant(4);
        queue.close(false);
        match push_plain(&queue) {
            Submit::Rejected { reason } => assert_eq!(reason, RejectReason::Shutdown),
            Submit::Accepted(_) => panic!("closed queue must reject"),
        }
    }

    /// Pushes `count` requests for `slot` and returns their handles (kept
    /// alive so drops don't run completers early).
    fn flood(queue: &SubmissionQueue, slot: usize, count: usize) -> Vec<RequestHandle> {
        (0..count)
            .map(|_| {
                queue
                    .push(generators::ghz(3).unwrap(), RequestOptions::default(), slot)
                    .handle()
                    .expect("accepted")
            })
            .collect()
    }

    #[test]
    fn drr_shares_one_batch_by_weight() {
        // Two saturated tenants with 3:1 weights: a 4-wide batch drains
        // exactly 3 from tenant 0 and 1 from tenant 1.
        let queue = SubmissionQueue::new(64, vec![3, 1]);
        let _a = flood(&queue, 0, 8);
        let _b = flood(&queue, 1, 8);
        let batch = queue.pop_batch(4, Duration::ZERO).unwrap();
        let shares = [
            batch.iter().filter(|r| r.slot == 0).count(),
            batch.iter().filter(|r| r.slot == 1).count(),
        ];
        assert_eq!(shares, [3, 1]);
    }

    #[test]
    fn drr_converges_to_weight_shares_over_many_batches() {
        // 3:1 weights, both tenants saturated: over the whole drain the
        // cumulative share stays within one quantum of 3:1 at every step.
        let queue = SubmissionQueue::new(256, vec![3, 1]);
        let _a = flood(&queue, 0, 96);
        let _b = flood(&queue, 1, 32);
        let (mut served_a, mut served_b) = (0usize, 0usize);
        while let Some(batch) = {
            if queue.depth() == 0 {
                None
            } else {
                queue.pop_batch(8, Duration::ZERO)
            }
        } {
            served_a += batch.iter().filter(|r| r.slot == 0).count();
            served_b += batch.iter().filter(|r| r.slot == 1).count();
            // While both tenants are still backlogged, the shares track the
            // 3:1 weights to within one quantum.
            if queue.depths().iter().all(|&d| d > 0) {
                let expected_a = 3.0 * served_b as f64;
                assert!(
                    (served_a as f64 - expected_a).abs() <= 4.0,
                    "shares drifted: a={served_a} b={served_b}"
                );
            }
        }
        assert_eq!((served_a, served_b), (96, 32));
    }

    #[test]
    fn drr_flood_cannot_starve_the_light_tenant() {
        // Tenant 0 floods 60 requests; tenant 1 sends 2 with equal weight.
        // Tenant 1's second request must be served within the first two
        // batches (round-robin), not after the flood drains.
        let queue = SubmissionQueue::new(128, vec![1, 1]);
        let _flood = flood(&queue, 0, 60);
        let _light = flood(&queue, 1, 2);
        let first = queue.pop_batch(4, Duration::ZERO).unwrap();
        let second = queue.pop_batch(4, Duration::ZERO).unwrap();
        let light_served = first
            .iter()
            .chain(second.iter())
            .filter(|r| r.slot == 1)
            .count();
        assert_eq!(light_served, 2, "light tenant starved by the flood");
    }

    #[test]
    fn out_of_range_slot_clamps_to_the_last_sub_queue() {
        let queue = SubmissionQueue::new(8, vec![1, 1]);
        assert!(queue
            .push(generators::ghz(3).unwrap(), RequestOptions::default(), 99)
            .is_accepted());
        assert_eq!(queue.depths(), vec![0, 1]);
    }
}
