//! End-to-end service tests, including the edge cases the serving contract
//! promises: zero-capacity rejection, expired deadlines, abort shutdown,
//! bit-identical dedup costs and provenance-correct reports.

use std::time::{Duration, Instant};

use qsp_core::QspWorkflow;
use qsp_serve::{
    Provenance, Response, SchedulerConfig, ServiceConfig, Shutdown, Submit, SynthesisRequest,
    SynthesisService,
};
use qsp_state::generators::{self, Workload};
use qsp_state::SparseState;

/// A generous bound for "this must not hang": every wait in these tests
/// resolves far faster unless the service is broken.
const HANG: Duration = Duration::from_secs(120);

fn service_with(queue_capacity: usize, workers: usize, max_batch: usize) -> SynthesisService {
    SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(queue_capacity)
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(max_batch)
                    .with_max_wait(Duration::from_millis(1))
                    .with_workers(workers),
            ),
    )
}

fn request(target: &SparseState) -> SynthesisRequest<SparseState> {
    SynthesisRequest::new(target.clone())
}

fn verify(circuit: &qsp_circuit::Circuit, target: &SparseState) {
    let report = qsp_sim::verify_preparation(circuit, target).expect("simulates");
    assert!(
        report.is_correct(),
        "served circuit does not prepare the target (fidelity {})",
        report.fidelity
    );
}

#[test]
fn serves_mixed_traffic_and_verifies() {
    let service = service_with(64, 2, 4);
    let targets = [
        generators::ghz(5).unwrap(),
        generators::w_state(4).unwrap(),
        generators::dicke(4, 2).unwrap(),
        generators::ghz(5).unwrap(),
    ];
    let handles: Vec<_> = targets
        .iter()
        .map(|t| service.submit(request(t)).handle().expect("accepted"))
        .collect();
    for (target, handle) in targets.iter().zip(&handles) {
        let response = handle.wait_timeout(HANG).expect("no hang");
        let Response::Completed(report) = response else {
            panic!("expected completion, got {response:?}");
        };
        verify(&report.circuit, target);
        assert_eq!(report.cnot_cost, report.circuit.cnot_cost());
        assert!(report.timings.total >= report.timings.solving);
    }
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.expired + stats.cancelled + stats.failed, 0);
    // The duplicate GHZ was served without a second solve.
    assert_eq!(stats.solver_runs, 3);
    assert_eq!(stats.deduped + stats.cache_hits, 1);
    assert!(stats.queue_high_water >= 1);
    assert_eq!(stats.end_to_end.count(), 4);
}

#[test]
fn reports_carry_provenance() {
    // Sequential submissions of the same target: the first is a fresh
    // solve, the second (after the first completed) a cache hit.
    let service = service_with(8, 1, 1);
    let target = generators::dicke(4, 2).unwrap();
    let first = service.submit(request(&target)).handle().expect("accepted");
    let first = first.wait_timeout(HANG).expect("no hang");
    let first = first.report().expect("completed");
    assert!(matches!(first.provenance, Provenance::Solved));
    assert!(first.timings.solving > Duration::ZERO);
    let second = service.submit(request(&target)).handle().expect("accepted");
    let second = second.wait_timeout(HANG).expect("no hang");
    let second = second.report().expect("completed").clone();
    let Provenance::CacheHit { witness } = &second.provenance else {
        panic!("expected a cache hit, got {:?}", second.provenance);
    };
    // The witness maps the request's target onto the canonical class
    // fingerprint; identical targets share it with the cached entry, so the
    // reconstruction composes to the identity and reuses the circuit as-is.
    assert_eq!(second.circuit, first.circuit);
    let _ = witness;
    assert_eq!(second.cnot_cost, first.cnot_cost);
    assert_eq!(second.timings.solving, Duration::ZERO);
    assert_eq!(second.resolved.workflow, *service.engine().config());
    service.shutdown(Shutdown::Drain);
}

#[test]
fn zero_capacity_queue_rejects_immediately() {
    let service = service_with(0, 1, 4);
    match service.submit(request(&generators::ghz(3).unwrap())) {
        Submit::Rejected { reason } => assert_eq!(
            reason,
            qsp_serve::RejectReason::QueueFull,
            "rejection must be backpressure"
        ),
        Submit::Accepted(_) => panic!("zero-capacity queue must reject"),
    }
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.submitted, 0);
    assert_eq!(stats.solver_runs, 0);
}

#[test]
fn already_expired_deadline_times_out_without_a_solve() {
    let service = service_with(8, 1, 4);
    let handle = service
        .submit(request(&generators::ghz(4).unwrap()).with_deadline(Instant::now()))
        .handle()
        .expect("accepted");
    assert_eq!(handle.wait_timeout(HANG), Some(Response::Timeout));
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.expired, 1);
    assert_eq!(
        stats.solver_runs, 0,
        "expired requests must never be solved"
    );
    assert_eq!(stats.completed, 0);
    // The expired request still shows up in the latency accounting.
    assert_eq!(stats.end_to_end.count(), 1);
}

#[test]
fn submissions_after_shutdown_are_rejected_as_not_queue_full() {
    let service = service_with(8, 1, 4);
    service.shutdown(Shutdown::Drain);
    match service.submit(request(&generators::ghz(3).unwrap())) {
        Submit::Rejected { reason } => assert_eq!(reason, qsp_serve::RejectReason::Shutdown),
        Submit::Accepted(_) => panic!("a stopped service must reject"),
    }
}

#[test]
fn abort_shutdown_fails_pending_handles_rather_than_hanging() {
    // One worker, batch size 1: the worker picks up the slow dense target
    // (~50 ms solve) while the GHZ requests sit in the queue behind it.
    let service = service_with(16, 1, 1);
    let slow = Workload::RandomDense { n: 4, seed: 9 }
        .instantiate()
        .unwrap();
    let mut handles = vec![service.submit(request(&slow)).handle().expect("accepted")];
    for _ in 0..4 {
        handles.push(
            service
                .submit(request(&generators::ghz(6).unwrap()))
                .handle()
                .expect("accepted"),
        );
    }
    let stats = service.shutdown(Shutdown::Abort);
    // Every handle resolves promptly — nothing hangs — and whatever was
    // still queued at abort time is Cancelled, not silently dropped.
    let mut cancelled = 0;
    for handle in &handles {
        match handle.wait_timeout(HANG).expect("no hang") {
            Response::Cancelled => cancelled += 1,
            Response::Completed(_) => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(stats.cancelled, cancelled);
    assert!(
        cancelled >= 1,
        "abort with a backed-up queue must cancel pending work"
    );
    assert_eq!(stats.completed + stats.cancelled, 5);
}

#[test]
fn dedup_attach_returns_bit_identical_cnot_cost() {
    // Eight copies of a ~50 ms dense target, staggered into a 4-worker
    // service with single-request drains: the first becomes the class owner
    // and everyone else attaches in flight or hits the cache. Exactly one
    // solver run can happen — the in-flight table makes a second solve of
    // the same class impossible while the first is running, and afterwards
    // the cache serves it.
    let workload = Workload::RandomDense { n: 4, seed: 21 };
    let target = workload.instantiate().unwrap();
    let solo = QspWorkflow::new()
        .synthesize_request(&SynthesisRequest::new(target.clone()))
        .unwrap();

    let service = service_with(32, 4, 1);
    let mut handles = Vec::new();
    for _ in 0..8 {
        handles.push(service.submit(request(&target)).handle().expect("accepted"));
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut costs = Vec::new();
    let mut attached = 0u64;
    for handle in &handles {
        let response = handle.wait_timeout(HANG).expect("no hang");
        let Response::Completed(report) = response else {
            panic!("expected completion, got {response:?}");
        };
        verify(&report.circuit, &target);
        if matches!(report.provenance, Provenance::DedupAttach { .. }) {
            attached += 1;
        }
        costs.push(report.cnot_cost);
    }
    let stats = service.shutdown(Shutdown::Drain);
    assert!(
        costs.iter().all(|&c| c == solo.cnot_cost),
        "deduped responses must cost exactly the solo solve: {costs:?} vs {}",
        solo.cnot_cost
    );
    assert_eq!(stats.solver_runs, 1, "one solve for eight requests");
    assert_eq!(stats.deduped + stats.cache_hits, 7);
    assert_eq!(
        stats.deduped, attached,
        "DedupAttach provenance must match the deduped counter"
    );
    assert_eq!(stats.completed, 8);
}

#[test]
fn edf_serves_urgent_requests_before_lax_ones_in_a_drain() {
    // Single worker still busy with a slow solve while five deadlined
    // requests pile up; the drain that picks them up must serve them in
    // deadline order. We verify through completion order via per-request
    // completion timestamps.
    let service = service_with(32, 1, 16);
    let slow = Workload::RandomDense { n: 4, seed: 33 }
        .instantiate()
        .unwrap();
    let _warm = service.submit(request(&slow)).handle().expect("accepted");
    let now = Instant::now();
    let far = service
        .submit(request(&generators::ghz(4).unwrap()).with_deadline(now + Duration::from_secs(500)))
        .handle()
        .expect("accepted");
    let near = service
        .submit(
            request(&generators::w_state(4).unwrap()).with_deadline(now + Duration::from_secs(100)),
        )
        .handle()
        .expect("accepted");
    let nearest = service
        .submit(
            request(&generators::dicke(4, 2).unwrap()).with_deadline(now + Duration::from_secs(50)),
        )
        .handle()
        .expect("accepted");
    service.shutdown(Shutdown::Drain);
    // All completed (deadlines were far in the future)...
    for handle in [&far, &near, &nearest] {
        assert!(handle.wait_timeout(HANG).expect("no hang").is_completed());
    }
    // ...and the EDF contract is covered deterministically by the queue's
    // unit tests; here we only require that nothing expired.
    let stats = service.stats();
    assert_eq!(stats.expired, 0);
}

#[test]
fn dedup_off_solves_every_request_independently() {
    let service = SynthesisService::start(
        ServiceConfig::default()
            .with_queue_capacity(16)
            .with_scheduler(
                SchedulerConfig::default()
                    .with_max_batch(4)
                    .with_max_wait(Duration::from_millis(1))
                    .with_workers(2),
            )
            .with_batch(qsp_core::BatchOptions::default().with_dedup(qsp_core::DedupPolicy::Off)),
    );
    let handles: Vec<_> = (0..3)
        .map(|_| {
            service
                .submit(request(&generators::ghz(4).unwrap()))
                .handle()
                .expect("accepted")
        })
        .collect();
    for handle in &handles {
        assert!(handle.wait_timeout(HANG).expect("no hang").is_completed());
    }
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.solver_runs, 3);
    assert_eq!(stats.deduped + stats.cache_hits, 0);
    assert_eq!(service.engine().cache_len(), 0);
}

#[test]
fn invalid_targets_fail_without_poisoning_the_service() {
    use qsp_state::BasisIndex;
    let service = service_with(8, 1, 4);
    let negative =
        SparseState::from_amplitudes(2, [(BasisIndex::new(0), 0.6), (BasisIndex::new(3), -0.8)])
            .unwrap();
    let bad = service
        .submit(request(&negative))
        .handle()
        .expect("accepted");
    let good = service
        .submit(request(&generators::ghz(3).unwrap()))
        .handle()
        .expect("accepted");
    assert!(matches!(
        bad.wait_timeout(HANG).expect("no hang"),
        Response::Failed(_)
    ));
    assert!(good.wait_timeout(HANG).expect("no hang").is_completed());
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn deprecated_submit_state_still_works() {
    // The compatibility wrapper accepts any backend state plus a deadline
    // and produces the same report-carrying responses.
    #![allow(deprecated)]
    let service = service_with(8, 1, 4);
    let target = generators::ghz(4).unwrap();
    let handle = service
        .submit_state(&target, Some(Instant::now() + Duration::from_secs(60)))
        .handle()
        .expect("accepted");
    let response = handle.wait_timeout(HANG).expect("no hang");
    assert_eq!(response.report().expect("completed").cnot_cost, 3);
    let stats = service.shutdown(Shutdown::Drain);
    assert_eq!(stats.completed, 1);
}

#[test]
fn stats_json_round_trips_through_the_shared_parser() {
    let service = service_with(8, 1, 4);
    let handle = service
        .submit(request(&generators::ghz(4).unwrap()))
        .handle()
        .expect("accepted");
    handle.wait_timeout(HANG).expect("no hang");
    let stats = service.shutdown(Shutdown::Drain);
    let parsed = qsp_core::json::parse(&stats.to_json_string()).expect("valid JSON");
    assert_eq!(parsed.get("completed").unwrap().as_u64(), Some(1));
    assert_eq!(parsed.get("solver_runs").unwrap().as_u64(), Some(1));
    assert!(parsed.get("end_to_end").unwrap().get("p99_ms").is_some());
}
